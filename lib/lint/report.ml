type t = {
  findings : Rules.finding list;
  files_scanned : int;
  waivers_total : int;
  waivers_used : int;
  waiver_sites : (string * string * string) list;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let count_rule t rule =
  List.length (List.filter (fun (f : Rules.finding) -> f.rule = rule) t.findings)

let by_rule t = List.map (fun r -> (r, count_rule t r)) Rules.all_rules

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf {|{"version":2,"files_scanned":%d,"waivers":{"total":%d,"used":%d},"by_rule":{|}
       t.files_scanned t.waivers_total t.waivers_used);
  List.iteri
    (fun i (rule, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|"%s":%d|} (json_escape rule) n))
    (by_rule t);
  Buffer.add_string buf {|},"findings":[|};
  List.iteri
    (fun i (f : Rules.finding) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"rule":"%s","file":"%s","line":%d,"message":"%s"}|} (json_escape f.rule)
           (json_escape f.file) f.line (json_escape f.message)))
    t.findings;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_table t =
  let buf = Buffer.create 1024 in
  if t.findings = [] then
    Buffer.add_string buf
      (Printf.sprintf "saturn-lint: clean — %d files scanned, %d/%d waivers in use\n" t.files_scanned
         t.waivers_used t.waivers_total)
  else begin
    Buffer.add_string buf
      (Printf.sprintf "saturn-lint: %d finding(s) in %d files scanned\n\n" (List.length t.findings)
         t.files_scanned);
    let site (f : Rules.finding) = Printf.sprintf "%s:%d" f.file f.line in
    let rule_w =
      List.fold_left (fun w (f : Rules.finding) -> max w (String.length f.rule)) 4 t.findings
    in
    let site_w = List.fold_left (fun w f -> max w (String.length (site f))) 4 t.findings in
    List.iter
      (fun (f : Rules.finding) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s  %-*s  %s\n" rule_w f.rule site_w (site f) f.message))
      t.findings
  end;
  Buffer.contents buf

(* markdown step summary for the CI job page: the per-rule counts first,
   then the findings themselves when there are any *)
let to_summary_md t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "### saturn-lint\n\n";
  Buffer.add_string buf
    (Printf.sprintf "%d finding(s) · %d files scanned · %d/%d waivers in use\n\n"
       (List.length t.findings) t.files_scanned t.waivers_used t.waivers_total);
  Buffer.add_string buf "| rule | findings |\n|---|---|\n";
  List.iter
    (fun (rule, n) -> Buffer.add_string buf (Printf.sprintf "| `%s` | %d |\n" rule n))
    (by_rule t);
  if t.findings <> [] then begin
    Buffer.add_string buf "\n| site | rule | message |\n|---|---|---|\n";
    List.iter
      (fun (f : Rules.finding) ->
        Buffer.add_string buf
          (Printf.sprintf "| `%s:%d` | `%s` | %s |\n" f.file f.line f.rule f.message))
      t.findings
  end;
  Buffer.contents buf

(* the waiver inventory the ratchet checks: line-number free so moving
   code does not churn the baseline, sorted for stable diffs *)
let to_waivers_txt t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "# saturn-lint waiver inventory — regenerate with ci/regen.sh --lint-baseline\n";
  Buffer.add_string buf "# <file> <rule> \xe2\x80\x94 <reason>\n";
  (* reasons come from comments that may wrap across lines: collapse the
     runs of whitespace so each inventory entry stays one parseable line *)
  let one_line s =
    String.concat " "
      (List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.map (function '\n' | '\t' -> ' ' | c -> c) s)))
  in
  List.iter
    (fun (file, rule, reason) ->
      Buffer.add_string buf (Printf.sprintf "%s %s \xe2\x80\x94 %s\n" file rule reason))
    (List.map (fun (f, r, reason) -> (f, r, one_line reason)) t.waiver_sites);
  Buffer.contents buf

(* Ratchet: every waiver in the tree must be listed in the checked-in
   inventory (new waivers need an explicit baseline refresh in the same
   commit, so review sees them), and the inventory must not list waivers
   that no longer exist (so the count only moves deliberately). *)
let check_waivers t ~inventory =
  let parse_line line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then None
    else
      (* "<file> <rule> — <reason>": the key is the first two words *)
      match String.split_on_char ' ' line with
      | file :: rule :: _ -> Some (file, rule)
      | _ -> None
  in
  let listed = List.filter_map parse_line (String.split_on_char '\n' inventory) in
  let actual = List.map (fun (file, rule, _) -> (file, rule)) t.waiver_sites in
  let missing = List.filter (fun k -> not (List.mem k listed)) actual in
  let stale = List.filter (fun k -> not (List.mem k actual)) listed in
  let errs =
    List.map
      (fun (file, rule) ->
        Printf.sprintf
          "new waiver %s (%s) is not in the checked-in inventory; run ci/regen.sh \
           --lint-baseline and justify the addition in review"
          file rule)
      missing
    @ List.map
        (fun (file, rule) ->
          Printf.sprintf
            "inventory lists a waiver for %s (%s) that no longer exists; run ci/regen.sh \
             --lint-baseline"
            file rule)
        stale
  in
  if errs = [] then Ok () else Error errs

let print ?(json = false) t =
  print_string (if json then to_json t ^ "\n" else to_table t)
