type t = {
  findings : Rules.finding list;
  files_scanned : int;
  waivers_total : int;
  waivers_used : int;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf {|{"version":1,"files_scanned":%d,"waivers":{"total":%d,"used":%d},"findings":[|}
       t.files_scanned t.waivers_total t.waivers_used);
  List.iteri
    (fun i (f : Rules.finding) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf {|{"rule":"%s","file":"%s","line":%d,"message":"%s"}|} (json_escape f.rule)
           (json_escape f.file) f.line (json_escape f.message)))
    t.findings;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_table t =
  let buf = Buffer.create 1024 in
  if t.findings = [] then
    Buffer.add_string buf
      (Printf.sprintf "saturn-lint: clean — %d files scanned, %d/%d waivers in use\n" t.files_scanned
         t.waivers_used t.waivers_total)
  else begin
    Buffer.add_string buf
      (Printf.sprintf "saturn-lint: %d finding(s) in %d files scanned\n\n" (List.length t.findings)
         t.files_scanned);
    let site (f : Rules.finding) = Printf.sprintf "%s:%d" f.file f.line in
    let rule_w =
      List.fold_left (fun w (f : Rules.finding) -> max w (String.length f.rule)) 4 t.findings
    in
    let site_w = List.fold_left (fun w f -> max w (String.length (site f))) 4 t.findings in
    List.iter
      (fun (f : Rules.finding) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s  %-*s  %s\n" rule_w f.rule site_w (site f) f.message))
      t.findings
  end;
  Buffer.contents buf

let print ?(json = false) t =
  print_string (if json then to_json t ^ "\n" else to_table t)
