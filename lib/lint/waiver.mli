(** Per-site waiver comments: [(* lint: allow <rule> — <reason> *)].

    A waiver silences exactly one rule on the line it ends on or the line
    below it, and must state a reason. Waivers that no longer silence
    anything are themselves reported (rule [unused-waiver]) so they cannot
    rot in place. *)

type t = { rule : string; reason : string; line : int; mutable used : bool }

type parsed =
  | Waiver of t
  | Not_a_waiver  (** an ordinary comment *)
  | Malformed of int * string  (** line, message — reported as [bad-waiver] *)

val of_comment : Token.comment -> parsed
val covers : t -> line:int -> bool
