(** Structural recovery over the token stream: top-level items, local
    let-binding chains, opens/aliases, [.mli] exports and variant
    constructors. Exact for the subset of OCaml this repo is written in;
    conservative (never narrower than the truth) elsewhere. *)

type binding = {
  b_name : string;  (** "" when the pattern binds no single name *)
  b_line : int;
  b_rhs_start : int;  (** token index of the first RHS token *)
  b_rhs_stop : int;  (** one past the last RHS token (its [in]) *)
}

type stmt =
  | S_def of binding  (** a local [let x = … in] *)
  | S_expr of int * int  (** expression chunk [start, stop) *)

type item_kind = K_let | K_module | K_open | K_type | K_other

type item = {
  it_kind : item_kind;
  it_names : (string * int) list;  (** names bound at the top level (let … and …) *)
  it_line : int;
  it_start : int;  (** token range [it_start, it_stop) including the keyword *)
  it_stop : int;
}

val items : Token.t array -> item list
(** Top-level structure items of a compilation unit, in order. *)

val item_containing : item list -> int -> item option
(** The item whose token range contains index [i]. *)

val statements : Token.t array -> from:int -> upto:int -> stmt list
(** Linearize a token range into local-binding definitions and the
    expression chunks between them, in textual order. *)

val item_body : Token.t array -> item -> int * int
(** The RHS range of a top-level [let] item (after its first depth-0 [=]). *)

val opens : Token.t array -> string list
(** Module paths the file opens ([open P], [let open P in], [P.(…)]),
    all treated file-wide (conservative), sorted and deduplicated. *)

val module_aliases : Token.t array -> (string * string) list
(** [module A = Dotted.Path] aliases: alias name -> aliased path. *)

val mli_vals : Token.t array -> (string * string * int) list
(** [val] declarations of an interface as (submodule path or "", name,
    line), in order. *)

val variant_constructors : Token.t array -> type_name:string -> (string * int) list
(** Constructors of [type <type_name> = C1 | C2 of …], with lines. *)
