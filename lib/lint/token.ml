type kind = Ident | Number | String | Char | Label | Punct

type t = { kind : kind; text : string; line : int; depth : int }

type comment = { ctext : string; cstart : int; cend : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'
let is_op_char c = String.contains "!$%&*+-./:<=>?@^|~" c
let is_lower c = (c >= 'a' && c <= 'z') || c = '_'

let last_component text =
  match String.rindex_opt text '.' with
  | None -> text
  | Some i -> String.sub text (i + 1) (String.length text - i - 1)

let starts_with ~prefix s = String.starts_with ~prefix s

let has_component comp text = List.mem comp (String.split_on_char '.' text)

(* Lexes the subset of OCaml this repo is written in: dotted identifiers
   are kept as single tokens ([Hashtbl.fold], [t.edge_links]), strings
   (including [{id|…|id}] quoted strings) and char literals are opaque,
   comments nest and are returned out-of-band so the waiver parser can see
   them. [depth] is bracket depth ([( [ { begin do struct sig object]
   open, [) ] } end done] close): openers and closers carry the *outer*
   depth, tokens between them the inner one. That is all the structure
   the token-level rules need; [Ast] recovers items and binding chains
   on top of it. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let comments = ref [] in
  let line = ref 1 in
  let depth = ref 0 in
  let push kind text d = toks := { kind; text; line = !line; depth = d } :: !toks in
  (* does position [p] open a {id|…|id} quoted string? *)
  let quoted_string_at p =
    let j = ref (p + 1) in
    while !j < n && is_lower src.[!j] do incr j done;
    !j < n && src.[!j] = '|'
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let cstart = !line in
      let buf = Buffer.create 64 in
      let level = ref 1 in
      i := !i + 2;
      while !level > 0 && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr level;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr level;
          if !level > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          if src.[!i] = '\n' then incr line;
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      comments := { ctext = Buffer.contents buf; cstart; cend = !line } :: !comments
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        let ch = src.[!i] in
        if ch = '\\' && !i + 1 < n then begin
          Buffer.add_char buf ch;
          Buffer.add_char buf src.[!i + 1];
          if src.[!i + 1] = '\n' then incr line;
          i := !i + 2
        end
        else if ch = '"' then begin
          fin := true;
          incr i
        end
        else begin
          if ch = '\n' then incr line;
          Buffer.add_char buf ch;
          incr i
        end
      done;
      push String (Buffer.contents buf) !depth
    end
    else if c = '{' && quoted_string_at !i then begin
      (* {id|…|id} quoted string *)
      let j = ref (!i + 1) in
      while !j < n && is_lower src.[!j] do incr j done;
      let id = String.sub src (!i + 1) (!j - !i - 1) in
      let close = "|" ^ id ^ "}" in
      let clen = String.length close in
      let start = !j + 1 in
      let stop = ref start in
      while !stop + clen <= n && String.sub src !stop clen <> close do incr stop done;
      let content = String.sub src start (min !stop n - start) in
      String.iter (fun ch -> if ch = '\n' then incr line) content;
      push String content !depth;
      i := min n (!stop + clen)
    end
    else if c = '\'' then begin
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        (* escaped char literal: scan to the closing quote *)
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do incr j done;
        push Char (String.sub src !i (min (!j + 1) n - !i)) !depth;
        i := !j + 1
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        push Char (String.sub src !i 3) !depth;
        i := !i + 3
      end
      else begin
        (* type variable ('a) — structurally irrelevant *)
        let j = ref (!i + 1) in
        while !j < n && is_ident_char src.[!j] do incr j done;
        push Punct (String.sub src !i (!j - !i)) !depth;
        i := !j
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      let j = ref !i in
      let rec go () =
        while !j < n && is_ident_char src.[!j] do incr j done;
        if !j + 1 < n && src.[!j] = '.' && is_ident_start src.[!j + 1] then begin
          incr j;
          go ()
        end
      in
      go ();
      let text = String.sub src start (!j - start) in
      (match text with
      | "begin" | "do" | "struct" | "sig" | "object" ->
        push Ident text !depth;
        incr depth
      | "end" | "done" ->
        depth := max 0 (!depth - 1);
        push Ident text !depth
      | _ -> push Ident text !depth);
      i := !j
    end
    else if is_digit c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && (is_ident_char src.[!j] || src.[!j] = '.') do incr j done;
      push Number (String.sub src start (!j - start)) !depth;
      i := !j
    end
    else if (c = '~' || c = '?') && !i + 1 < n && is_ident_start src.[!i + 1] then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char src.[!j] do incr j done;
      push Label (String.sub src !i (!j - !i)) !depth;
      i := !j
    end
    else if c = '(' || c = '[' || c = '{' then begin
      push Punct (String.make 1 c) !depth;
      incr depth;
      incr i
    end
    else if c = ')' || c = ']' || c = '}' then begin
      depth := max 0 (!depth - 1);
      push Punct (String.make 1 c) !depth;
      incr i
    end
    else if c = ';' || c = ',' then begin
      let text =
        if c = ';' && !i + 1 < n && src.[!i + 1] = ';' then begin
          i := !i + 2;
          ";;"
        end
        else begin
          incr i;
          String.make 1 c
        end
      in
      push Punct text !depth
    end
    else if is_op_char c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_op_char src.[!j] do incr j done;
      push Punct (String.sub src start (!j - start)) !depth;
      i := !j
    end
    else begin
      push Punct (String.make 1 c) !depth;
      incr i
    end
  done;
  (Array.of_list (List.rev !toks), List.rev !comments)
