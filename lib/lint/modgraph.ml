(* The cross-file module graph's library half: which dune library lives
   in which directory, what it depends on, and the wrapped module name
   other libraries see it under. Parsing covers the s-expression subset
   this repo's dune files use — (library (name x) (libraries a b c)) —
   and ignores everything else (executables, rules, aliases). *)

type lib = {
  lib_name : string;
  lib_dir : string;  (* directory of the dune file, repo-relative *)
  lib_deps : string list;
}

(* minimal s-expression reader: atoms and lists, no strings-with-spaces
   (dune library stanzas never need them) *)
type sexp = Atom of string | List of sexp list

let parse_sexps src =
  let n = String.length src in
  let i = ref 0 in
  let rec skip_ws () =
    if !i < n then
      match src.[!i] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr i;
        skip_ws ()
      | ';' ->
        while !i < n && src.[!i] <> '\n' do incr i done;
        skip_ws ()
      | _ -> ()
  in
  let rec parse_one () =
    skip_ws ();
    if !i >= n then None
    else if src.[!i] = '(' then begin
      incr i;
      let items = ref [] in
      let fin = ref false in
      while not !fin do
        skip_ws ();
        if !i >= n then fin := true
        else if src.[!i] = ')' then begin
          incr i;
          fin := true
        end
        else
          match parse_one () with
          | Some s -> items := s :: !items
          | None -> fin := true
      done;
      Some (List (List.rev !items))
    end
    else if src.[!i] = ')' then None
    else begin
      let start = !i in
      while !i < n && not (String.contains " \t\n\r();" src.[!i]) do incr i done;
      if !i > start then Some (Atom (String.sub src start (!i - start))) else None
    end
  in
  let out = ref [] in
  let fin = ref false in
  while not !fin do
    match parse_one () with Some s -> out := s :: !out | None -> fin := true
  done;
  List.rev !out

let field name = function
  | List (Atom f :: rest) when f = name -> Some rest
  | _ -> None

let atoms l = List.filter_map (function Atom a -> Some a | List _ -> None) l

(* [sources] are (dune file path, contents); the library's directory is
   the dune file's. *)
let parse sources =
  List.concat_map
    (fun (path, contents) ->
      let dir = Filename.dirname path in
      List.filter_map
        (function
          | List (Atom "library" :: fields) -> (
            let name = List.find_map (field "name") fields in
            let deps = List.find_map (field "libraries") fields in
            match name with
            | Some [ Atom n ] ->
              Some
                {
                  lib_name = n;
                  lib_dir = dir;
                  lib_deps = (match deps with Some l -> atoms l | None -> []);
                }
            | _ -> None)
          | _ -> None)
        (parse_sexps contents))
    sources

let wrapped_module l = String.capitalize_ascii l.lib_name

let under_dir ~dir path =
  path = dir || Token.starts_with ~prefix:(dir ^ "/") path

let libs_under libs ~dirs =
  List.filter (fun l -> List.exists (fun d -> under_dir ~dir:d l.lib_dir) dirs) libs
