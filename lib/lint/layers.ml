(* The checked-in architecture contract (ci/layers.txt): named layers
   over directories, plus deny edges from a layer to identifier prefixes
   or to other layers. Grammar, one declaration per line:

     layer <name> = <dir> [<dir> ...]
     deny <layer> -> <spec> [<spec> ...]

   where <spec> is either [layer:<name>] (no identifier of that layer's
   wrapped library modules, and no dune dependency edge) or an
   identifier prefix ([Unix.] matches the whole module, [Format.printf]
   exactly one value). [#] starts a comment. *)

type spec = S_layer of string | S_prefix of string

type deny = { d_from : string; d_specs : spec list; d_line : int }

type t = { layers : (string * string list) list; denies : deny list }

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse contents =
  let layers = ref [] in
  let denies = ref [] in
  let error = ref None in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt line '#' with Some h -> String.sub line 0 h | None -> line
      in
      match split_ws line with
      | [] -> ()
      | "layer" :: name :: "=" :: (_ :: _ as dirs) -> layers := (name, dirs) :: !layers
      | "deny" :: from :: "->" :: (_ :: _ as specs) ->
        let specs =
          List.map
            (fun s ->
              if Token.starts_with ~prefix:"layer:" s then
                S_layer (String.sub s 6 (String.length s - 6))
              else S_prefix s)
            specs
        in
        denies := { d_from = from; d_specs = specs; d_line = lineno } :: !denies
      | _ ->
        if !error = None then
          error :=
            Some
              (Printf.sprintf
                 "line %d: expected 'layer <name> = <dir>...' or 'deny <layer> -> <spec>...'"
                 lineno))
    (String.split_on_char '\n' contents);
  match !error with
  | Some e -> Error e
  | None ->
    let t = { layers = List.rev !layers; denies = List.rev !denies } in
    (* every name a deny references must be declared *)
    let missing =
      List.find_map
        (fun d ->
          if not (List.mem_assoc d.d_from t.layers) then Some (d.d_line, d.d_from)
          else
            List.find_map
              (function
                | S_layer l when not (List.mem_assoc l t.layers) -> Some (d.d_line, l)
                | _ -> None)
              d.d_specs)
        t.denies
    in
    (match missing with
    | Some (line, name) -> Error (Printf.sprintf "line %d: undeclared layer %S" line name)
    | None -> Ok t)

let dirs_of t name = Option.value ~default:[] (List.assoc_opt name t.layers)
