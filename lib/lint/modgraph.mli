(** The library half of the cross-file module graph: dune library
    stanzas mapped to directories, dependency edges, and the wrapped
    module name other libraries reference a library under. *)

type lib = {
  lib_name : string;
  lib_dir : string;  (** directory of the dune file, repo-relative *)
  lib_deps : string list;
}

val parse : (string * string) list -> lib list
(** Extract [(library (name …) (libraries …))] stanzas from (dune file
    path, contents) pairs. Executables, rules and aliases are ignored. *)

val wrapped_module : lib -> string
(** The module name the library's contents are reachable under from
    outside it ([sim] -> [Sim]). *)

val under_dir : dir:string -> string -> bool
(** Is the path equal to, or inside, [dir]? *)

val libs_under : lib list -> dirs:string list -> lib list
