(** Def-use dataflow over [Ast] items: statement windows, order-safety
    classification for unordered hash iteration (R1), and
    nondeterminism-taint tracking from ambient sources through
    let-bindings and function returns to probe/registry/digest/scheduler
    sinks (R6). "Safe" always requires positive evidence. *)

val window_fwd : Token.t array -> int -> Token.t list

val statement_window : Token.t array -> int -> Token.t list
(** The statement-level token window around a site, bounded by
    [;]/[in]/[let]/[->]/… at the site's minimal bracket depth. *)

val unordered_op : string -> bool
(** Is this identifier a [Hashtbl] iteration in table order? *)

val slice_exists : Token.t array -> from:int -> upto:int -> (Token.t -> bool) -> bool

type r1_class =
  | R1_safe of string  (** why the order provably cannot escape *)
  | R1_unsafe

val classify_unordered : Token.t array -> items:Ast.item list -> int -> r1_class
(** Order-safety of the unordered-iteration site at token index [i]:
    sorted in the same statement, a commutative fold reduction, a binding
    that is only sorted/used to remove table entries, or an array fill
    that is sorted before any read — anything else is unsafe. *)

type taint_finding = {
  tf_line : int;  (** the sink site *)
  tf_source : string;
  tf_src_line : int;
  tf_sink : string;
  tf_via : string list;  (** binding chain from source to sink, in order *)
}

val check_taint : Token.t array -> taint_finding list
(** R6 over one compilation unit: ambient taint propagates through local
    let-bindings and (module-wide) through function returns; an
    R1-unsafe fold taints the name it is bound to; [sort] kills taint.
    A finding is produced only where taint reaches a sink. *)
