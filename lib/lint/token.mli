(** Hand-rolled lexer for the subset of OCaml this repository is written
    in — the analogue of the hand-rolled JSON reader the span tests use:
    no ppxlib, no compiler-libs, just enough structure for the lint rules.

    Dotted identifiers ([Hashtbl.fold], [Sim.Span.begin_], [t.edge_links])
    are single {!Ident} tokens. String literals (including [{id|…|id}]
    quoted strings) and char literals are opaque, so a rule never fires on
    the {e mention} of a forbidden name in a string or comment. Comments
    nest and are returned out-of-band for the waiver parser. *)

type kind =
  | Ident  (** possibly dotted; includes keywords *)
  | Number
  | String  (** text is the literal's raw content, quotes stripped *)
  | Char
  | Label  (** [~at], [?keep] *)
  | Punct  (** operators (maximal munch: [|>], [==], […]) and delimiters *)

type t = {
  kind : kind;
  text : string;
  line : int;  (** 1-based *)
  depth : int;
      (** bracket depth — [( \[ { begin do struct sig object] open,
          [) \] } end done] close; opener/closer tokens carry the outer
          depth *)
}

type comment = { ctext : string; cstart : int; cend : int }

val tokenize : string -> t array * comment list
(** Tokens in source order plus all comments (with their line spans). *)

val last_component : string -> string
(** ["Sim.Span.Sk_bulk"] → ["Sk_bulk"]. *)

val starts_with : prefix:string -> string -> bool

val has_component : string -> string -> bool
(** [has_component "bulk" "t.bulk"] — is the name a dot-component of the
    (possibly dotted) identifier? *)
