(* Lightweight structural layer over the token stream: top-level items,
   local let-binding chains, call-site argument shapes, [.mli] exports and
   the opens/module-aliases the cross-file passes resolve against. Still
   no ppxlib/compiler-libs: top-level structure is recovered with a
   [let]-vs-[let … in] classification over bracket depths, which is exact
   for the subset of OCaml this repo is written in. *)

type binding = {
  b_name : string;  (* "" when the pattern binds no single name *)
  b_line : int;
  b_rhs_start : int;  (* token index of the first RHS token *)
  b_rhs_stop : int;  (* one past the last RHS token *)
}

type stmt =
  | S_def of binding  (* a local [let x = … in] *)
  | S_expr of int * int  (* expression chunk [start, stop) *)

type item_kind = K_let | K_module | K_open | K_type | K_other

type item = {
  it_kind : item_kind;
  it_names : (string * int) list;  (* names bound at the top level (let … and …) *)
  it_line : int;
  it_start : int;  (* token range [it_start, it_stop) including the keyword *)
  it_stop : int;
}

(* "val" appears only in interfaces, where it ends the preceding item —
   without it a [type] item in an .mli would swallow the whole signature *)
let item_starter = [ "let"; "module"; "open"; "type"; "exception"; "include"; "external"; "val" ]

(* Is the [let] (or [and]) at index [i] a local binding — i.e. does an
   [in] at the same bracket depth close it before the next structure
   keyword at that depth? [let open … in] is always local. *)
let let_is_local (toks : Token.t array) i =
  let n = Array.length toks in
  if i + 1 < n && toks.(i + 1).kind = Token.Ident && toks.(i + 1).text = "open" then true
  else begin
    let d = toks.(i).depth in
    let rec go j nested =
      if j >= n then false
      else
        let t = toks.(j) in
        if t.depth < d then false
        else if t.depth = d && t.kind = Token.Ident then
          if t.text = "in" then if nested = 0 then true else go (j + 1) (nested - 1)
          else if t.text = "let" then go (j + 1) (nested + 1)
          else if List.mem t.text item_starter then
            (* [let open M in]/[let module M = ...] mid-expression: the
               keyword after [let] is not a new top-level item *)
            if j > 0 && toks.(j - 1).kind = Token.Ident && toks.(j - 1).text = "let" then
              go (j + 1) nested
            else false
          else go (j + 1) nested
        else go (j + 1) nested
    in
    go (i + 1) 0
  end

(* The name a [let]/[and] at [i] binds: the next lone identifier, or ""
   for patterns ([let (a, b) =], [let () =]) and operators. *)
let binding_name (toks : Token.t array) i =
  let n = Array.length toks in
  let j = ref (i + 1) in
  if !j < n && toks.(!j).kind = Token.Ident && toks.(!j).text = "rec" then incr j;
  if !j < n && toks.(!j).kind = Token.Ident && not (List.mem toks.(!j).text item_starter) then
    (toks.(!j).text, toks.(!j).line)
  else ("", if !j < n then toks.(!j).line else (if n = 0 then 0 else toks.(n - 1).line))

(* Token index of the [=] that starts the RHS of the binding at [i]
   (same depth as the [let], skipping default-argument [=]s which sit
   deeper), or None for malformed input. *)
let rhs_eq (toks : Token.t array) i =
  let n = Array.length toks in
  let d = toks.(i).depth in
  let rec go j =
    if j >= n then None
    else
      let t = toks.(j) in
      if t.depth < d then None
      else if t.depth = d && t.kind = Token.Punct && t.text = "=" then Some j
      else if
        t.depth = d && t.kind = Token.Ident
        && List.mem t.text ("in" :: item_starter)
      then None
      else go (j + 1)
  in
  go (i + 1)

(* One past the last RHS token of a local binding whose [=] sits at [eq]:
   the matching [in] at the binding's depth, counting nested local lets. *)
let local_rhs_stop (toks : Token.t array) ~upto ~depth eq =
  let rec go j nested =
    if j >= upto then upto
    else
      let t = toks.(j) in
      if t.depth < depth then j
      else if t.depth = depth && t.kind = Token.Ident then
        if t.text = "in" then if nested = 0 then j else go (j + 1) (nested - 1)
        else if t.text = "let" then go (j + 1) (nested + 1)
        else go (j + 1) nested
      else go (j + 1) nested
  in
  go (eq + 1) 0

(* ---- top-level items ----------------------------------------------------- *)

let items (toks : Token.t array) =
  let n = Array.length toks in
  let starts = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if t.depth = 0 && t.kind = Token.Ident && List.mem t.text item_starter then begin
        let local =
          match t.text with
          | "let" -> let_is_local toks i
          | "open" ->
            (* [let open …] was consumed by the [let]; a bare [open] is an item *)
            i > 0 && toks.(i - 1).kind = Token.Ident && toks.(i - 1).text = "let"
          | _ -> false
        in
        if not local then starts := i :: !starts
      end)
    toks;
  let starts = List.rev !starts in
  let rec build = function
    | [] -> []
    | s :: rest ->
      let stop = match rest with s' :: _ -> s' | [] -> n in
      let t = toks.(s) in
      let kind =
        match t.text with
        | "let" -> K_let
        | "module" -> K_module
        | "open" -> K_open
        | "type" -> K_type
        | _ -> K_other
      in
      let names =
        if kind <> K_let then (match binding_name toks s with ("", _) -> [] | nm -> [ nm ])
        else begin
          (* [let … and …] chains: every top-level [and] in range adds a name *)
          let names = ref [ binding_name toks s ] in
          for j = s + 1 to stop - 1 do
            let tj = toks.(j) in
            if tj.depth = 0 && tj.kind = Token.Ident && tj.text = "and" && not (let_is_local toks j)
            then names := binding_name toks j :: !names
          done;
          List.rev !names
        end
      in
      { it_kind = kind; it_names = names; it_line = t.line; it_start = s; it_stop = stop }
      :: build rest
  in
  build starts

(* The item range containing token index [i], if any. *)
let item_containing its i = List.find_opt (fun it -> it.it_start <= i && i < it.it_stop) its

(* ---- statements inside an item body -------------------------------------- *)

(* Splits [from, upto) into local-binding definitions and the expression
   chunks between them, in textual order. Nested local lets inside a RHS
   stay part of that RHS (taint looks inside slices anyway). *)
let statements (toks : Token.t array) ~from ~upto =
  let out = ref [] in
  let flush_expr a b = if b > a then out := S_expr (a, b) :: !out in
  let i = ref from in
  let chunk = ref from in
  while !i < upto do
    let t = toks.(!i) in
    if
      t.kind = Token.Ident
      && (t.text = "let" || t.text = "and")
      && (!i + 1 >= upto || not (toks.(!i + 1).kind = Token.Ident && toks.(!i + 1).text = "open"))
      && let_is_local toks !i
    then begin
      flush_expr !chunk !i;
      let name, line = binding_name toks !i in
      match rhs_eq toks !i with
      | None ->
        chunk := !i + 1;
        incr i
      | Some eq ->
        let stop = local_rhs_stop toks ~upto ~depth:t.depth eq in
        out := S_def { b_name = name; b_line = line; b_rhs_start = eq + 1; b_rhs_stop = stop } :: !out;
        (* continue after the [in] *)
        i := min upto (stop + 1);
        chunk := !i
    end
    else incr i
  done;
  flush_expr !chunk upto;
  List.rev !out

(* The body of a top-level [let] item: everything after its first [=] at
   depth 0 ([let f x = body]). Falls back to the whole range. *)
let item_body (toks : Token.t array) it =
  if it.it_kind <> K_let then (it.it_start, it.it_stop)
  else
    match rhs_eq toks it.it_start with
    | Some eq when eq + 1 < it.it_stop -> (eq + 1, it.it_stop)
    | _ -> (it.it_start, it.it_stop)

(* ---- opens and module aliases --------------------------------------------- *)

let is_upper_ident (t : Token.t) =
  t.kind = Token.Ident && String.length t.text > 0 && t.text.[0] >= 'A' && t.text.[0] <= 'Z'

(* Every module path the file opens: top-level [open P], [let open P in],
   and local [P.(…)] opens. Conservative: all are treated file-wide. *)
let opens (toks : Token.t array) =
  let n = Array.length toks in
  let out = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if t.kind = Token.Ident && t.text = "open" && i + 1 < n && is_upper_ident toks.(i + 1) then
        out := toks.(i + 1).text :: !out
      else if
        is_upper_ident t
        && i + 2 < n
        && toks.(i + 1).kind = Token.Punct
        && toks.(i + 1).text = "."
        && toks.(i + 2).kind = Token.Punct
        && toks.(i + 2).text = "("
      then out := t.text :: !out)
    toks;
  List.sort_uniq String.compare !out

(* [module A = Dotted.Path] aliases (RHS a bare module path, not a
   functor application or struct): alias name -> full path. *)
let module_aliases (toks : Token.t array) =
  let n = Array.length toks in
  let out = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if
        t.kind = Token.Ident && t.text = "module"
        && i + 3 < n
        && is_upper_ident toks.(i + 1)
        && toks.(i + 2).kind = Token.Punct
        && toks.(i + 2).text = "="
        && is_upper_ident toks.(i + 3)
        && not (i + 4 < n && toks.(i + 4).kind = Token.Punct && toks.(i + 4).text = "(")
      then out := (toks.(i + 1).text, toks.(i + 3).text) :: !out)
    toks;
  List.rev !out

(* ---- .mli exports ---------------------------------------------------------- *)

(* [val] declarations of an interface, with the submodule path for vals
   declared inside [module X : sig … end] ("" at the top level). *)
let mli_vals (toks : Token.t array) =
  let n = Array.length toks in
  let out = ref [] in
  (* stack of (module name, depth inside its sig, sig token index) — the
     frame is pushed at the [module] token, while [X : sig] itself still
     sits one level shallower, so popping must wait until past the [sig] *)
  let stack = ref [] in
  let i = ref 0 in
  while !i < n do
    let t = toks.(!i) in
    (match !stack with
    | (_, d, sig_idx) :: rest when !i > sig_idx && t.depth < d -> stack := rest
    | _ -> ());
    if t.kind = Token.Ident && t.text = "module" && !i + 1 < n && is_upper_ident toks.(!i + 1) then begin
      (* [module X : sig] — the sig token opens one depth level *)
      let name = toks.(!i + 1).text in
      let rec find_sig j =
        if j >= n || j > !i + 6 then None
        else if toks.(j).kind = Token.Ident && toks.(j).text = "sig" then Some j
        else find_sig (j + 1)
      in
      match find_sig (!i + 2) with
      | Some j -> stack := (name, toks.(j).depth + 1, j) :: !stack
      | None -> ()
    end;
    if
      t.kind = Token.Ident && t.text = "val"
      && !i + 1 < n
      && toks.(!i + 1).kind = Token.Ident
    then begin
      let path = String.concat "." (List.rev_map (fun (nm, _, _) -> nm) !stack) in
      out := (path, toks.(!i + 1).text, toks.(!i + 1).line) :: !out
    end;
    incr i
  done;
  List.rev !out

(* ---- variant constructors -------------------------------------------------- *)

(* The constructors of [type <type_name> = C1 | C2 of …] in an interface
   or implementation (capitalized idents directly after [=] or [|] at the
   declaration's depth, until the next structure item). *)
let variant_constructors (toks : Token.t array) ~type_name =
  let its = items toks in
  match
    List.find_opt
      (fun it -> it.it_kind = K_type && List.exists (fun (nm, _) -> nm = type_name) it.it_names)
      its
  with
  | None -> []
  | Some it ->
    let out = ref [] in
    let d = toks.(it.it_start).depth in
    for j = it.it_start + 1 to it.it_stop - 1 do
      let t = toks.(j) in
      if
        is_upper_ident t && t.depth = d && j > it.it_start
        && (let p = toks.(j - 1) in
            (p.kind = Token.Punct && (p.text = "|" || p.text = "=")))
        && not (String.contains t.text '.')
      then out := (t.text, t.line) :: !out
    done;
    List.rev !out
