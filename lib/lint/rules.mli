(** The rule set. Every rule front-runs one of CI's runtime determinism
    or invariant gates: what the digest/tiling/counter/bytes gates catch
    after the fact — and only on the scenarios CI replays — these catch
    at the source level, on every path.

    - [unordered-iteration] (R1): [Hashtbl.iter]/[fold]/[to_seq] must not
      let table order escape. The def-use classifier in {!Dataflow}
      recognizes sorts in the same statement, commutative fold
      reductions, bindings that only drive [Hashtbl.remove] sweeps or are
      sorted before any read, and array fills sorted below — anything
      else needs a waiver with a proof (front-runs the trace-digest
      gate).
    - [ambient-nondeterminism] (R2): wall clocks ([Unix.gettimeofday],
      [Sys.time]), module-level [Random], [Marshal] and [Hashtbl.hash]
      are forbidden in the scanned tree (front-runs the digest gate;
      [bench/] wall-clock reporting is outside the default scan scope).
    - [span-pairing] (R3): every [Span.begin_] call site must have a
      matching [Span.end_] for the same [Sk_*] constructor somewhere in
      the tree (front-runs the exact-tiling gate).
    - [counter-name-grammar] (R4): counter names reaching the registry
      must match [[a-z0-9_.*>-]+] and the dotted family.metric
      convention; [Stats.Series] registration sites additionally need the
      ["series."] prefix the runtime enforces; and every name in
      [ci/smoke-counters.txt] must still be coverable by a registration
      site (front-runs the probe-counter gate).
    - [physical-equality] (R5): [==]/[!=] compare addresses; use [=]/[<>]
      or waive an intentional identity check.
    - [nondeterminism-taint] (R6): values derived from ambient sources
      (wall clock, module-level [Random], [Hashtbl.hash], unsorted
      [Hashtbl] folds) are tracked through let-bindings and function
      returns within a module; a finding fires only where taint reaches
      a sink — probe/span emission, registry/series recording, digest
      inputs, engine scheduling (front-runs the digest gate at one
      remove: the PR 8 [Reliable_fifo] id leak reached the digest
      through two let-bindings R2 could not see).
    - [layer-boundary] (R7): the deny edges declared in [ci/layers.txt]
      — identifier chains and dune dependency edges — hold; this is the
      transport-agnostic split the live-mode refactor needs (front-runs
      the in-sim/live divergence the ROADMAP's smoke deployment will
      gate).
    - [protocol-invariant] (R8): every [ship]/bulk-send call site passes
      [~size_bytes], records [Stats.Meta_bytes] in its enclosing
      definition, and — in [lib/core] — threads an epoch; every
      [Probe.event] constructor has a consumer in [Faults.Checker],
      [Harness.Journey] or [Harness.Chrome] (front-runs the
      metadata-bytes and fault-matrix gates).
    - [dead-export] (R9): [.mli] values never referenced outside their
      module, and top-level [.ml] values the interface hides that the
      file itself never uses (keeps the surface the other rules must
      reason about minimal). *)

type finding = { rule : string; file : string; line : int; message : string }

val r_unordered : string
val r_ambient : string
val r_span : string
val r_counter : string
val r_physeq : string
val r_taint : string
val r_layer : string
val r_proto : string
val r_dead : string
val r_unused_waiver : string
val r_bad_waiver : string

val waivable : string list
(** Rule names a [(* lint: allow … *)] comment may reference. *)

val all_rules : string list
(** Every rule name, waivable or not, for per-rule report counts. *)

type span_site = { sp_file : string; sp_line : int; sp_kind : string option; sp_is_begin : bool }

type reg_pattern = { rp_file : string; rp_line : int; rp_pattern : string }

type file_facts = {
  ff_findings : finding list;
      (** R1, R2, R5, R6, R8's ship half and R4's grammar half *)
  ff_spans : span_site list;  (** inputs to the cross-file R3 check *)
  ff_patterns : reg_pattern list;  (** inputs to the cross-file R4 check *)
}

val analyze_file : file:string -> Token.t array -> file_facts

val pair_spans : span_site list -> finding list
(** Cross-file half of R3, over the whole tree's collected sites. *)

val check_baseline : file:string -> string list -> reg_pattern list -> finding list
(** Cross-file half of R4: [lines] is [ci/smoke-counters.txt]. *)

val check_probe_consumers : (string * Token.t array) list -> finding list
(** Cross-file half of R8: every [Probe.event] constructor (from the
    scanned [simulator/probe.mli]) must appear in at least one of
    [faults/checker.ml], [harness/journey.ml], [harness/chrome.ml]. *)

val check_layers :
  layers:Layers.t -> libs:Modgraph.lib list -> (string * Token.t array) list -> finding list
(** R7 over tokenized sources: identifier chains and dune dependency
    edges against the declared deny list. *)

val check_dead_exports :
  sources:(string * Token.t array) list ->
  use_sources:(string * Token.t array) list ->
  finding list
(** R9: [sources] are the scanned tree (findings land there);
    [use_sources] are reference-only trees (tests, benches, examples)
    whose uses keep an export alive without being scanned themselves. *)

val matches : pattern:string -> string -> bool
(** Glob match; [*] spans any substring. Exposed for tests. *)
