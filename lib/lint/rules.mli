(** The rule set. Every rule front-runs one of CI's runtime determinism
    gates: what the digest/tiling/counter gates catch after the fact — and
    only on the scenarios CI replays — these catch at the source level, on
    every path.

    - [unordered-iteration] (R1): [Hashtbl.iter]/[fold]/[to_seq] must be
      sorted in the same expression, or waived with a proof that iteration
      order cannot escape (front-runs the trace-digest gate).
    - [ambient-nondeterminism] (R2): wall clocks ([Unix.gettimeofday],
      [Sys.time]), module-level [Random], [Marshal] and [Hashtbl.hash] are
      forbidden in [lib/] (front-runs the digest gate; [bench/]/[bin/]
      wall-clock reporting is outside the default scan scope).
    - [span-pairing] (R3): every [Span.begin_] call site must have a
      matching [Span.end_] for the same [Sk_*] constructor somewhere in the
      tree (front-runs the exact-tiling gate).
    - [counter-name-grammar] (R4): counter names reaching the registry must
      match [[a-z0-9_.*>-]+] and the dotted family.metric convention;
      [Stats.Series] registration sites ([Series.counter]/[sample]/[hist])
      additionally need the ["series."] prefix the runtime enforces; and
      every name in [ci/smoke-counters.txt] must still be coverable by a
      registration site (front-runs the probe-counter gate).
    - [physical-equality] (R5): [==]/[!=] compare addresses; use [=]/[<>]
      or waive an intentional identity check. *)

type finding = { rule : string; file : string; line : int; message : string }

val r_unordered : string
val r_ambient : string
val r_span : string
val r_counter : string
val r_physeq : string
val r_unused_waiver : string
val r_bad_waiver : string

val waivable : string list
(** Rule names a [(* lint: allow … *)] comment may reference. *)

type span_site = { sp_file : string; sp_line : int; sp_kind : string option; sp_is_begin : bool }

type reg_pattern = { rp_file : string; rp_line : int; rp_pattern : string }

type file_facts = {
  ff_findings : finding list;  (** R1, R2, R5 and R4's grammar half *)
  ff_spans : span_site list;  (** inputs to the cross-file R3 check *)
  ff_patterns : reg_pattern list;  (** inputs to the cross-file R4 check *)
}

val analyze_file : file:string -> Token.t array -> file_facts

val pair_spans : span_site list -> finding list
(** Cross-file half of R3, over the whole tree's collected sites. *)

val check_baseline : file:string -> string list -> reg_pattern list -> finding list
(** Cross-file half of R4: [lines] is [ci/smoke-counters.txt]. *)

val matches : pattern:string -> string -> bool
(** Glob match; [*] spans any substring. Exposed for tests. *)
