(** The driver: tokenize, run per-file rules, run the cross-file rules
    (span pairing, counter baseline, layer boundaries, probe consumers,
    dead exports), apply waivers, then report the waivers that silenced
    nothing. *)

val scan_source :
  file:string -> string -> Rules.file_facts * Waiver.t list * Rules.finding list
(** One file in isolation; returns (facts, parsed waivers, bad-waiver
    findings). Interfaces ([.mli]) contribute waivers but empty facts.
    Exposed for tests. *)

val run_sources :
  ?baseline:string * string ->
  ?layers:string * string ->
  ?dune_files:(string * string) list ->
  ?use_sources:(string * string) list ->
  (string * string) list ->
  Report.t
(** Full analysis over in-memory (path, contents) pairs — [.ml] and
    [.mli]. [baseline] is the smoke-counter baseline, [layers] the
    layer contract, [dune_files] feed the module graph for R7's
    dependency-edge half, and [use_sources] are reference-only trees
    whose uses keep an export alive (R9) without being scanned for
    findings. This is what the unit tests drive with inline fixtures. *)

val run :
  ?baseline:string ->
  ?layers:string ->
  ?use_dirs:string list ->
  root:string ->
  dirs:string list ->
  unit ->
  Report.t
(** Walk [root]/[dirs] for [*.ml], [*.mli] and [dune] files (skipping
    dotfiles and [_build]), walk [use_dirs] for reference-only [*.ml],
    read [baseline]/[layers] if the paths exist, and analyze. *)
