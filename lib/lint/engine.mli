(** The driver: tokenize, run per-file rules, run the cross-file rules,
    apply waivers, then report the waivers that silenced nothing. *)

val scan_source :
  file:string -> string -> Rules.file_facts * Waiver.t list * Rules.finding list
(** One file in isolation; returns (facts, parsed waivers, bad-waiver
    findings). Exposed for tests. *)

val run_sources : ?baseline:string * string -> (string * string) list -> Report.t
(** Full analysis over in-memory (path, contents) pairs; [baseline] is
    (path, contents) of the smoke-counter baseline. This is what the unit
    tests drive with inline fixtures. *)

val run : ?baseline:string -> root:string -> dirs:string list -> unit -> Report.t
(** Walk [root]/[dirs] for [*.ml] files (skipping dotfiles and [_build]),
    read [baseline] if the path exists, and analyze. *)
