type finding = { rule : string; file : string; line : int; message : string }

let r_unordered = "unordered-iteration"
let r_ambient = "ambient-nondeterminism"
let r_span = "span-pairing"
let r_counter = "counter-name-grammar"
let r_physeq = "physical-equality"
let r_taint = "nondeterminism-taint"
let r_layer = "layer-boundary"
let r_proto = "protocol-invariant"
let r_dead = "dead-export"
let r_unused_waiver = "unused-waiver"
let r_bad_waiver = "bad-waiver"

(* rules a waiver comment may name *)
let waivable =
  [ r_unordered; r_ambient; r_span; r_counter; r_physeq; r_taint; r_layer; r_proto; r_dead ]

let all_rules = waivable @ [ r_unused_waiver; r_bad_waiver ]

type span_site = { sp_file : string; sp_line : int; sp_kind : string option; sp_is_begin : bool }

type reg_pattern = { rp_file : string; rp_line : int; rp_pattern : string }

type file_facts = {
  ff_findings : finding list;
  ff_spans : span_site list;
  ff_patterns : reg_pattern list;
}

(* ---- R1: unordered iteration -------------------------------------------- *)

(* The heavy lifting moved to [Dataflow.classify_unordered]: a site is
   clean when the order provably cannot escape (sorted in the same
   statement, a commutative fold, a binding that only drives removals or
   is sorted before any read, an array fill sorted below). Everything the
   classifier cannot prove stays a finding. *)
let check_unordered ~file ~items toks =
  let out = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if t.kind = Token.Ident && Dataflow.unordered_op t.text then
        match Dataflow.classify_unordered toks ~items i with
        | Dataflow.R1_safe _ -> ()
        | Dataflow.R1_unsafe ->
          out :=
            {
              rule = r_unordered;
              file;
              line = t.line;
              message =
                Printf.sprintf
                  "%s iterates in hash-table order and the order can escape; sort the result, \
                   reduce commutatively, or waive with a proof"
                  t.text;
            }
            :: !out)
    toks;
  List.rev !out

(* ---- R2: ambient nondeterminism ------------------------------------------ *)

let ambient_reason text =
  if text = "Unix.gettimeofday" || text = "Unix.time" || text = "Sys.time" then
    Some "reads the wall clock; simulated components must use Sim.Engine.now"
  else if text = "Hashtbl.hash" || Token.starts_with ~prefix:"Hashtbl.hash_param" text then
    Some "Hashtbl.hash is not stable across OCaml versions; use the FNV digest instead"
  else if Token.starts_with ~prefix:"Marshal." text then
    Some "Marshal output is not a stable wire format; use the JSONL/probe encodings"
  else if
    Token.starts_with ~prefix:"Random." text && not (Token.starts_with ~prefix:"Random.State." text)
  then Some "module-level Random is ambient global state; use Sim.Rng (or a seeded Random.State)"
  else None

let check_ambient ~file toks =
  let out = ref [] in
  Array.iter
    (fun (t : Token.t) ->
      if t.kind = Token.Ident then
        match ambient_reason t.text with
        | Some why ->
          out :=
            { rule = r_ambient; file; line = t.line; message = Printf.sprintf "%s: %s" t.text why }
            :: !out
        | None -> ())
    toks;
  List.rev !out

(* ---- R5: physical equality ---------------------------------------------- *)

let check_physeq ~file toks =
  let out = ref [] in
  Array.iter
    (fun (t : Token.t) ->
      if t.kind = Token.Punct && (t.text = "==" || t.text = "!=") then
        out :=
          {
            rule = r_physeq;
            file;
            line = t.line;
            message =
              Printf.sprintf
                "physical %s compares addresses, not values; use %s (or waive for an intentional \
                 identity check)"
                (if t.text = "==" then "equality (==)" else "inequality (!=)")
                (if t.text = "==" then "=" else "<>");
          }
          :: !out)
    toks;
  List.rev !out

(* ---- R3: span pairing (site collection) ---------------------------------- *)

let span_call text =
  if text = "Span.begin_" || String.ends_with ~suffix:".Span.begin_" text then Some true
  else if text = "Span.end_" || String.ends_with ~suffix:".Span.end_" text then Some false
  else None

let sk_of (t : Token.t) =
  if t.kind = Token.Ident && Token.starts_with ~prefix:"Sk_" (Token.last_component t.text) then
    Some (Token.last_component t.text)
  else None

(* Top-level-ish segments for the fallback kind search: a helper may bind
   [begin_ ~at] to a name and apply it to the [Sk_*] constructor a
   statement later (Proxy.span_label does), so when the statement window
   holds no constructor we look across the enclosing let-to-let segment. *)
let segment_bounds (toks : Token.t array) i =
  let n = Array.length toks in
  let seg_start (t : Token.t) =
    t.kind = Token.Ident && t.depth = 0
    && List.mem t.text [ "let"; "type"; "module"; "open"; "exception"; "include" ]
  in
  let a = ref i in
  while !a > 0 && not (seg_start toks.(!a)) do decr a done;
  let b = ref (i + 1) in
  while !b < n && not (seg_start toks.(!b)) do incr b done;
  (!a, !b)

let collect_spans ~file (toks : Token.t array) =
  let out = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if t.kind = Token.Ident then
        match span_call t.text with
        | None -> ()
        | Some is_begin ->
          let kind =
            match List.find_map sk_of (Dataflow.window_fwd toks i) with
            | Some k -> Some k
            | None ->
              let a, b = segment_bounds toks i in
              let found = ref None in
              for j = a to b - 1 do
                if !found = None then found := sk_of toks.(j)
              done;
              !found
          in
          out := { sp_file = file; sp_line = t.line; sp_kind = kind; sp_is_begin = is_begin } :: !out)
    toks;
  List.rev !out

let pair_spans (sites : span_site list) =
  let module M = Map.Make (String) in
  let add is_begin m site =
    let b, e = Option.value ~default:([], []) (M.find_opt (Option.get site.sp_kind) m) in
    M.add (Option.get site.sp_kind)
      (if is_begin then (site :: b, e) else (b, site :: e))
      m
  in
  let unresolved, resolved = List.partition (fun s -> s.sp_kind = None) sites in
  let m =
    List.fold_left (fun m s -> add s.sp_is_begin m s) M.empty resolved
  in
  let findings = ref [] in
  List.iter
    (fun s ->
      findings :=
        {
          rule = r_span;
          file = s.sp_file;
          line = s.sp_line;
          message =
            Printf.sprintf
              "cannot resolve the span kind at this Span.%s call; name the Sk_* constructor in \
               the same statement"
              (if s.sp_is_begin then "begin_" else "end_");
        }
        :: !findings)
    unresolved;
  M.iter
    (fun kind (begins, ends) ->
      let report side (s : span_site) other =
        findings :=
          {
            rule = r_span;
            file = s.sp_file;
            line = s.sp_line;
            message =
              Printf.sprintf
                "Span_%s of %s has no matching Span_%s call site anywhere in the scanned tree — \
                 the %s span can never close, breaking the tiling invariant"
                side kind other kind;
          }
          :: !findings
      in
      if begins <> [] && ends = [] then List.iter (fun s -> report "begin" s "end") begins;
      if ends <> [] && begins = [] then List.iter (fun s -> report "end" s "begin") ends)
    m;
  List.rev !findings

(* ---- R4: counter-name grammar -------------------------------------------- *)

let registration_call text =
  match String.split_on_char '.' text with
  | [ _; "Registry"; ("counter" | "gauge" | "histogram" | "register_pull") ]
  | [ "Registry"; ("counter" | "gauge" | "histogram" | "register_pull") ] ->
    true
  | _ -> false

(* windowed-series registration sites share the registry's name grammar
   plus one extra rule: the literal must carry the "series." prefix the
   runtime enforces, so a typo fails at lint time, not mid-run *)
let series_registration_call text =
  match String.split_on_char '.' text with
  | [ _; "Series"; ("counter" | "sample" | "hist") ]
  | [ "Series"; ("counter" | "sample" | "hist") ] ->
    true
  | _ -> false

let name_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '*' || c = '>' || c = '-'

(* "%d" → "*": format literals name a shape, not a single counter *)
let format_to_glob s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '%' && !i + 1 < n then begin
      let j = ref (!i + 1) in
      while
        !j < n
        && not (String.contains "diuxXosfeEgGbBcdLln%" s.[!j])
      do
        incr j
      done;
      Buffer.add_char buf '*';
      i := !j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let sprintf_like text =
  List.mem (Token.last_component text) [ "sprintf"; "asprintf"; "format" ]

(* The name argument of a registration call, as a glob: string literals
   keep their text (format specifiers become [*]), spliced expressions
   become [*]. [Registry.counter reg ("span." ^ k ^ ".us")] → [span.*.us].
   Non-application occurrences (type annotations, [val] signatures) yield
   [None]: their next token is punctuation, not an argument. *)
let extract_pattern (toks : Token.t array) i =
  let n = Array.length toks in
  (* skip one argument (the registry handle): an ident or a paren group *)
  let skip_arg j =
    if j >= n then None
    else
      match toks.(j).kind with
      | Token.Punct when toks.(j).text = "(" ->
        let d = toks.(j).depth in
        let k = ref (j + 1) in
        while !k < n && not (toks.(!k).kind = Token.Punct && toks.(!k).text = ")" && toks.(!k).depth = d) do
          incr k
        done;
        Some (!k + 1)
      | Token.Ident -> Some (j + 1)
      | _ -> None
  in
  match skip_arg (i + 1) with
  | None -> None
  | Some j when j >= n -> None
  | Some j -> (
    match toks.(j) with
    | { kind = Token.String; text; line; _ } ->
      Some (line, [ (line, text) ], format_to_glob text)
    | { kind = Token.Punct; text = "("; depth; _ } ->
      let pieces = ref [] in
      let glob = Buffer.create 16 in
      let star () =
        if Buffer.length glob = 0 || Buffer.nth glob (Buffer.length glob - 1) <> '*' then
          Buffer.add_char glob '*'
      in
      let k = ref (j + 1) in
      let fin = ref false in
      let sprintf_mode = ref false in
      while (not !fin) && !k < n do
        let t = toks.(!k) in
        if t.kind = Token.Punct && t.text = ")" && t.depth = depth then fin := true
        else begin
          (match t.kind with
          | Token.String ->
            pieces := (t.line, t.text) :: !pieces;
            if not !sprintf_mode then Buffer.add_string glob (format_to_glob t.text)
            else if Buffer.length glob = 0 then Buffer.add_string glob (format_to_glob t.text)
          | Token.Ident when sprintf_like t.text -> sprintf_mode := true
          | Token.Ident | Token.Number | Token.Char ->
            if not !sprintf_mode then star ()
          | Token.Label -> fin := true
          | Token.Punct -> ());
          incr k
        end
      done;
      if Buffer.length glob = 0 then Some (toks.(j).line, List.rev !pieces, "*")
      else Some (toks.(j).line, List.rev !pieces, Buffer.contents glob)
    | { kind = Token.Ident; line; _ } -> Some (line, [], "*")
    | _ -> None)

let check_counters ~file (toks : Token.t array) =
  let findings = ref [] in
  let patterns = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if t.kind = Token.Ident && (registration_call t.text || series_registration_call t.text) then
        match extract_pattern toks i with
        | None -> ()
        | Some (line, pieces, pattern) ->
          List.iter
            (fun (pline, piece) ->
              let bad = String.exists (fun c -> not (name_char c)) (format_to_glob piece) in
              if bad then
                findings :=
                  {
                    rule = r_counter;
                    file;
                    line = pline;
                    message =
                      Printf.sprintf
                        "counter name literal %S contains characters outside [a-z0-9_.*>-]" piece;
                  }
                  :: !findings)
            pieces;
          if pattern <> "*" && not (String.contains pattern '.') then
            findings :=
              {
                rule = r_counter;
                file;
                line;
                message =
                  Printf.sprintf
                    "counter name %S is not dotted; names follow the family.metric convention"
                    pattern;
              }
              :: !findings;
          if
            series_registration_call t.text
            && pattern <> "*"
            && not (String.length pattern >= 7 && String.sub pattern 0 7 = "series.")
          then
            findings :=
              {
                rule = r_counter;
                file;
                line;
                message =
                  Printf.sprintf
                    "series name %S must start with \"series.\" (Stats.Series rejects it at \
                     runtime)"
                    pattern;
              }
              :: !findings;
          patterns := { rp_file = file; rp_line = line; rp_pattern = pattern } :: !patterns)
    toks;
  (List.rev !findings, List.rev !patterns)

let rec glob_match p s pi si =
  let pn = String.length p and sn = String.length s in
  if pi = pn then si = sn
  else if p.[pi] = '*' then glob_match p s (pi + 1) si || (si < sn && glob_match p s pi (si + 1))
  else si < sn && p.[pi] = s.[si] && glob_match p s (pi + 1) (si + 1)

let matches ~pattern name = glob_match pattern name 0 0

(* Baseline coverage: every counter CI's smoke gate checks must still have
   a registration site whose name shape covers it. Catches a rename (or a
   deleted subsystem) at lint time instead of at gate time. *)
let check_baseline ~file lines patterns =
  let findings = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let name =
          match String.index_opt line ' ' with Some sp -> String.sub line 0 sp | None -> line
        in
        if not (List.exists (fun p -> matches ~pattern:p.rp_pattern name) patterns) then
          findings :=
            {
              rule = r_counter;
              file;
              line = lineno;
              message =
                Printf.sprintf
                  "baseline counter %S matches no registration site in the scanned tree — stale \
                   baseline or lost registration"
                  name;
            }
            :: !findings
      end)
    lines;
  List.rev !findings

(* ---- R6: nondeterminism taint --------------------------------------------- *)

let check_taint ~file toks =
  List.map
    (fun (tf : Dataflow.taint_finding) ->
      {
        rule = r_taint;
        file;
        line = tf.Dataflow.tf_line;
        message =
          Printf.sprintf "%s (line %d) reaches %s%s; derive the value deterministically or waive \
                          with a proof it cannot vary"
            tf.Dataflow.tf_source tf.Dataflow.tf_src_line tf.Dataflow.tf_sink
            (match tf.Dataflow.tf_via with
            | [] -> ""
            | via -> Printf.sprintf " through %s" (String.concat " -> " via));
      })
    (Dataflow.check_taint toks)

(* ---- R8: protocol-invariant ship sites ------------------------------------ *)

(* Every bulk shipment must (a) pass [~size_bytes] so Meta_bytes can
   attribute it, (b) sit in a definition that records [Stats.Meta_bytes]
   (the PR 7 accounting convention), and — in [lib/core], where shipments
   cross reconfiguration epochs — (c) thread an epoch. The definition of
   the [ship] primitive itself is exempt from (b): it is the thing call
   sites account around. *)
let ship_site (toks : Token.t array) i (t : Token.t) =
  t.kind = Token.Ident
  && ((Token.last_component t.text = "ship"
       && not
            (i > 0
            && toks.(i - 1).kind = Token.Ident
            && List.mem toks.(i - 1).text [ "let"; "and"; "val" ]))
     || (Token.has_component "Link" t.text
        && Token.last_component t.text = "send"
        && List.exists
             (fun (w : Token.t) -> w.kind = Token.Ident && Token.has_component "bulk" w.text)
             (Dataflow.statement_window toks i)))

let item_mentions_meta toks (it : Ast.item) =
  Dataflow.slice_exists toks ~from:it.Ast.it_start ~upto:it.Ast.it_stop (fun t ->
      t.kind = Token.Ident && Token.has_component "Meta_bytes" t.text)

let item_mentions_epoch toks (it : Ast.item) =
  Dataflow.slice_exists toks ~from:it.Ast.it_start ~upto:it.Ast.it_stop (fun t ->
      match t.kind with
      | Token.Ident -> Token.has_component "epoch" t.text
      | Token.Label -> t.text = "~epoch" || t.text = "?epoch"
      | _ -> false)

let check_ship ~file ~items toks =
  let out = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if ship_site toks i t then begin
        let flag message = out := { rule = r_proto; file; line = t.line; message } :: !out in
        if
          not
            (List.exists
               (fun (w : Token.t) -> w.kind = Token.Label && w.text = "~size_bytes")
               (Dataflow.window_fwd toks i))
        then
          flag
            (Printf.sprintf
               "bulk send %s does not pass ~size_bytes — metadata-bytes accounting cannot \
                attribute this shipment"
               t.text);
        match Ast.item_containing items i with
        | None -> ()
        | Some it ->
          let defines_ship = List.exists (fun (nm, _) -> nm = "ship") it.Ast.it_names in
          if (not defines_ship) && not (item_mentions_meta toks it) then
            flag
              (Printf.sprintf
                 "ship site %s sits in a definition that never records Stats.Meta_bytes — the \
                  bytes-per-op gate undercounts this channel"
                 t.text);
          if
            Token.starts_with ~prefix:"lib/core/" file
            && (not defines_ship)
            && not (item_mentions_epoch toks it)
          then
            flag
              (Printf.sprintf
                 "bulk send %s in lib/core does not thread an epoch — the reconfiguration drain \
                  barrier cannot classify this shipment"
                 t.text)
      end)
    toks;
  List.rev !out

(* ---- R8 cross-file half: every probe constructor has a consumer ------------ *)

let probe_consumer_suffixes = [ "faults/checker.ml"; "harness/journey.ml"; "harness/chrome.ml" ]

let check_probe_consumers sources =
  match
    List.find_opt (fun (f, _) -> String.ends_with ~suffix:"simulator/probe.mli" f) sources
  with
  | None -> []
  | Some (pfile, ptoks) ->
    let ctors = Ast.variant_constructors ptoks ~type_name:"event" in
    let consumers =
      List.filter
        (fun (f, _) ->
          List.exists (fun s -> String.ends_with ~suffix:s f) probe_consumer_suffixes)
        sources
    in
    List.filter_map
      (fun (c, line) ->
        let used =
          List.exists
            (fun (_, toks) ->
              Array.exists
                (fun (t : Token.t) ->
                  t.kind = Token.Ident && Token.last_component t.text = c)
                toks)
            consumers
        in
        if used then None
        else
          Some
            {
              rule = r_proto;
              file = pfile;
              line;
              message =
                Printf.sprintf
                  "Probe.%s has no consumer in Faults.Checker, Harness.Journey or Harness.Chrome \
                   — an event nobody checks or renders is dead telemetry"
                  c;
            })
      ctors

(* ---- R7: layer boundaries -------------------------------------------------- *)

let head_component text =
  match String.index_opt text '.' with None -> text | Some d -> String.sub text 0 d

let check_layers ~layers ~libs sources =
  let findings = ref [] in
  List.iter
    (fun (d : Layers.deny) ->
      let from_dirs = Layers.dirs_of layers d.Layers.d_from in
      let from_files =
        List.filter
          (fun (f, _) -> List.exists (fun dir -> Modgraph.under_dir ~dir f) from_dirs)
          sources
      in
      List.iter
        (fun spec ->
          match spec with
          | Layers.S_prefix p ->
            let bare =
              if String.ends_with ~suffix:"." p then String.sub p 0 (String.length p - 1) else p
            in
            List.iter
              (fun (file, toks) ->
                Array.iter
                  (fun (t : Token.t) ->
                    if
                      t.kind = Token.Ident
                      && (t.text = bare || t.text = p || Token.starts_with ~prefix:(bare ^ ".") t.text)
                    then
                      findings :=
                        {
                          rule = r_layer;
                          file;
                          line = t.line;
                          message =
                            Printf.sprintf
                              "layer %S may not reach %s (ci/layers.txt); offending identifier: %s"
                              d.Layers.d_from p t.text;
                        }
                        :: !findings)
                  toks)
              from_files
          | Layers.S_layer target ->
            let target_dirs = Layers.dirs_of layers target in
            let target_mods =
              List.map Modgraph.wrapped_module (Modgraph.libs_under libs ~dirs:target_dirs)
            in
            (* identifier edges, resolving [module A = Target.X] aliases *)
            List.iter
              (fun (file, toks) ->
                let aliases =
                  List.filter_map
                    (fun (a, p) ->
                      if List.mem (head_component p) target_mods then Some a else None)
                    (Ast.module_aliases toks)
                in
                Array.iter
                  (fun (t : Token.t) ->
                    if t.kind = Token.Ident then begin
                      let head = head_component t.text in
                      if List.mem head target_mods || List.mem head aliases then
                        findings :=
                          {
                            rule = r_layer;
                            file;
                            line = t.line;
                            message =
                              Printf.sprintf
                                "layer %S may not reach layer %S (ci/layers.txt); offending \
                                 identifier: %s"
                                d.Layers.d_from target t.text;
                          }
                          :: !findings
                    end)
                  toks)
              from_files;
            (* dune dependency edges, so the ban holds even for code the
               identifier scan cannot see *)
            let target_libs =
              List.map (fun (l : Modgraph.lib) -> l.Modgraph.lib_name)
                (Modgraph.libs_under libs ~dirs:target_dirs)
            in
            List.iter
              (fun (l : Modgraph.lib) ->
                List.iter
                  (fun dep ->
                    if List.mem dep target_libs then
                      findings :=
                        {
                          rule = r_layer;
                          file = l.Modgraph.lib_dir ^ "/dune";
                          line = 1;
                          message =
                            Printf.sprintf
                              "layer %S may not depend on layer %S (ci/layers.txt), but library \
                               %s lists %s in (libraries …)"
                              d.Layers.d_from target l.Modgraph.lib_name dep;
                        }
                        :: !findings)
                  l.Modgraph.lib_deps)
              (Modgraph.libs_under libs ~dirs:from_dirs))
        d.Layers.d_specs)
    layers.Layers.denies;
  List.rev !findings

(* ---- R9: dead exports and .mli drift --------------------------------------- *)

(* Per-file reference index: (component, last component) pairs of every
   dotted identifier, plus opens/aliases/includes, so the per-val check
   is a hash lookup instead of a token scan. *)
type use_info = {
  ui_pairs : (string * string, unit) Hashtbl.t;
  ui_lasts : (string, unit) Hashtbl.t;
  ui_opens : string list;  (* last components of opened paths *)
  ui_aliases : (string * string) list;  (* alias -> head of the aliased path *)
  ui_includes : string list;  (* last components of included paths *)
}

let use_info (toks : Token.t array) =
  let pairs = Hashtbl.create 256 in
  let lasts = Hashtbl.create 256 in
  let includes = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if t.kind = Token.Ident then begin
        let comps = String.split_on_char '.' t.text in
        let last = List.nth comps (List.length comps - 1) in
        Hashtbl.replace lasts last ();
        List.iter (fun c -> Hashtbl.replace pairs (c, last) ()) comps;
        if t.text = "include" && i + 1 < Array.length toks && toks.(i + 1).kind = Token.Ident then
          includes := Token.last_component toks.(i + 1).text :: !includes
      end
      else if t.kind = Token.Label && String.length t.text > 1 then
        (* a punned label argument [~x] under an [open] is a use of [x] *)
        Hashtbl.replace lasts (String.sub t.text 1 (String.length t.text - 1)) ())
    toks;
  {
    ui_pairs = pairs;
    ui_lasts = lasts;
    ui_opens = List.map Token.last_component (Ast.opens toks);
    ui_aliases = List.map (fun (a, p) -> (a, head_component p)) (Ast.module_aliases toks);
    ui_includes = !includes;
  }

let module_of_path f = String.capitalize_ascii (Filename.remove_extension (Filename.basename f))

let check_dead_exports ~sources ~use_sources =
  let findings = ref [] in
  let infos = List.map (fun (f, toks) -> (f, toks, use_info toks)) (sources @ use_sources) in
  let included =
    List.sort_uniq String.compare (List.concat_map (fun (_, _, ui) -> ui.ui_includes) infos)
  in
  (* R9a: an exported val nobody outside the module references *)
  List.iter
    (fun (mli_file, mli_toks) ->
      if Filename.check_suffix mli_file ".mli" then begin
        let m = module_of_path mli_file in
        let own_ml = Filename.remove_extension mli_file ^ ".ml" in
        let others = List.filter (fun (f, _, _) -> f <> mli_file && f <> own_ml) infos in
        List.iter
          (fun (subpath, name, line) ->
            let want = if subpath = "" then m else Token.last_component subpath in
            (* [include]d modules re-export everything; references cannot
               be attributed, so stay silent *)
            if (not (List.mem m included)) && not (List.mem want included) then begin
              let referenced =
                List.exists
                  (fun (_, _, ui) ->
                    Hashtbl.mem ui.ui_pairs (want, name)
                    || List.exists
                         (fun (a, tgt) -> tgt = want && Hashtbl.mem ui.ui_pairs (a, name))
                         ui.ui_aliases
                    || (List.mem want ui.ui_opens && Hashtbl.mem ui.ui_lasts name))
                  others
              in
              if not referenced then
                findings :=
                  {
                    rule = r_dead;
                    file = mli_file;
                    line;
                    message =
                      Printf.sprintf
                        "val %s%s is never referenced outside its module — delete the export (and \
                         the value, if nothing inside uses it) or waive with the planned caller"
                        (if subpath = "" then "" else subpath ^ ".")
                        name;
                  }
                  :: !findings
            end)
          (Ast.mli_vals mli_toks)
      end)
    sources;
  (* R9b: a top-level value the .mli hides and the .ml itself never uses *)
  List.iter
    (fun (ml_file, ml_toks) ->
      if Filename.check_suffix ml_file ".ml" then
        match
          List.find_opt (fun (f, _) -> f = Filename.remove_extension ml_file ^ ".mli") sources
        with
        | None -> ()
        | Some (_, mli_toks) ->
          let has_include =
            Array.exists (fun (t : Token.t) -> t.kind = Token.Ident && t.text = "include") ml_toks
          in
          if not has_include then begin
            let exported = List.map (fun (_, n, _) -> n) (Ast.mli_vals mli_toks) in
            List.iter
              (fun (it : Ast.item) ->
                (* a multi-name item is a [let rec ... and ...] group whose
                   members call each other inside the item's own range —
                   sibling calls are real uses we cannot tell apart from
                   self-recursion, so stay silent *)
                if it.Ast.it_kind = Ast.K_let && List.length it.Ast.it_names = 1 then
                  List.iter
                    (fun (name, line) ->
                      if name <> "" && name.[0] <> '_' && not (List.mem name exported) then begin
                        let used = ref false in
                        Array.iteri
                          (fun j (t : Token.t) ->
                            if
                              (j < it.Ast.it_start || j >= it.Ast.it_stop)
                              && ((t.kind = Token.Ident && head_component t.text = name)
                                 (* punned label argument [~name] passes the value *)
                                 || (t.kind = Token.Label
                                    && String.length t.text > 1
                                    && String.sub t.text 1 (String.length t.text - 1) = name))
                            then used := true)
                          ml_toks;
                        if not !used then
                          findings :=
                            {
                              rule = r_dead;
                              file = ml_file;
                              line;
                              message =
                                Printf.sprintf
                                  "top-level value %s is hidden by the .mli and never used in \
                                   this file — dead code, or an export the interface lost"
                                  name;
                            }
                            :: !findings
                      end)
                    it.Ast.it_names)
              (Ast.items ml_toks)
          end)
    sources;
  List.rev !findings

(* ---- per-file driver ------------------------------------------------------ *)

let analyze_file ~file toks =
  let items = Ast.items toks in
  let counter_findings, patterns = check_counters ~file toks in
  {
    ff_findings =
      check_unordered ~file ~items toks
      @ check_ambient ~file toks @ check_physeq ~file toks @ counter_findings
      @ check_taint ~file toks @ check_ship ~file ~items toks;
    ff_spans = collect_spans ~file toks;
    ff_patterns = patterns;
  }
