type finding = { rule : string; file : string; line : int; message : string }

let r_unordered = "unordered-iteration"
let r_ambient = "ambient-nondeterminism"
let r_span = "span-pairing"
let r_counter = "counter-name-grammar"
let r_physeq = "physical-equality"
let r_unused_waiver = "unused-waiver"
let r_bad_waiver = "bad-waiver"

(* rules a waiver comment may name *)
let waivable = [ r_unordered; r_ambient; r_span; r_counter; r_physeq ]

type span_site = { sp_file : string; sp_line : int; sp_kind : string option; sp_is_begin : bool }

type reg_pattern = { rp_file : string; rp_line : int; rp_pattern : string }

type file_facts = {
  ff_findings : finding list;
  ff_spans : span_site list;
  ff_patterns : reg_pattern list;
}

(* ---- statement windows --------------------------------------------------

   "The same expression" for R1/R3: the token window around a site bounded
   by statement-level punctuation. Scanning out from the site we track the
   lowest bracket depth seen so far ([l]); a boundary token only stops the
   scan when it sits at that level, so delimiters inside sibling argument
   groups — the [->] of an inline [fun], the [;] inside its body — are
   crossed freely while the [in]/[;]/[let] that really ends the statement
   is not. *)

let fwd_stop = [ ";"; ";;"; "in"; "let"; "and"; "then"; "else"; "do"; "done"; "->"; "|" ]
let bwd_stop = fwd_stop @ [ "="; "<-"; ":=" ]

let boundary stops (t : Token.t) =
  (match t.kind with Token.Ident | Token.Punct -> true | _ -> false)
  && List.mem t.text stops

let window_fwd (toks : Token.t array) i =
  let n = Array.length toks in
  let out = ref [] in
  let l = ref toks.(i).depth in
  let k = ref (i + 1) in
  let stop = ref false in
  while (not !stop) && !k < n do
    let t = toks.(!k) in
    if t.depth < !l then l := t.depth;
    if boundary fwd_stop t && t.depth <= !l then stop := true
    else begin
      out := t :: !out;
      incr k
    end
  done;
  List.rev !out

let window_bwd (toks : Token.t array) i =
  let out = ref [] in
  let l = ref toks.(i).depth in
  let k = ref (i - 1) in
  let stop = ref false in
  while (not !stop) && !k >= 0 do
    let t = toks.(!k) in
    if t.depth < !l then l := t.depth;
    if boundary bwd_stop t && t.depth <= !l then stop := true
    else begin
      out := t :: !out;
      decr k
    end
  done;
  !out

let statement_window toks i = window_bwd toks i @ (toks.(i) :: window_fwd toks i)

(* ---- R1: unordered iteration -------------------------------------------- *)

let unordered_op text =
  Token.starts_with ~prefix:"Hashtbl." text
  && List.mem (Token.last_component text) [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let sort_witness (t : Token.t) =
  t.kind = Token.Ident
  && List.mem (Token.last_component t.text) [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let check_unordered ~file toks =
  let out = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if t.kind = Token.Ident && unordered_op t.text then
        if not (List.exists sort_witness (statement_window toks i)) then
          out :=
            {
              rule = r_unordered;
              file;
              line = t.line;
              message =
                Printf.sprintf
                  "%s iterates in hash-table order; sort the result in the same expression or \
                   waive with a proof that the order cannot escape"
                  t.text;
            }
            :: !out)
    toks;
  List.rev !out

(* ---- R2: ambient nondeterminism ------------------------------------------ *)

let ambient_reason text =
  if text = "Unix.gettimeofday" || text = "Unix.time" || text = "Sys.time" then
    Some "reads the wall clock; simulated components must use Sim.Engine.now"
  else if text = "Hashtbl.hash" || Token.starts_with ~prefix:"Hashtbl.hash_param" text then
    Some "Hashtbl.hash is not stable across OCaml versions; use the FNV digest instead"
  else if Token.starts_with ~prefix:"Marshal." text then
    Some "Marshal output is not a stable wire format; use the JSONL/probe encodings"
  else if
    Token.starts_with ~prefix:"Random." text && not (Token.starts_with ~prefix:"Random.State." text)
  then Some "module-level Random is ambient global state; use Sim.Rng (or a seeded Random.State)"
  else None

let check_ambient ~file toks =
  let out = ref [] in
  Array.iter
    (fun (t : Token.t) ->
      if t.kind = Token.Ident then
        match ambient_reason t.text with
        | Some why ->
          out :=
            { rule = r_ambient; file; line = t.line; message = Printf.sprintf "%s: %s" t.text why }
            :: !out
        | None -> ())
    toks;
  List.rev !out

(* ---- R5: physical equality ---------------------------------------------- *)

let check_physeq ~file toks =
  let out = ref [] in
  Array.iter
    (fun (t : Token.t) ->
      if t.kind = Token.Punct && (t.text = "==" || t.text = "!=") then
        out :=
          {
            rule = r_physeq;
            file;
            line = t.line;
            message =
              Printf.sprintf
                "physical %s compares addresses, not values; use %s (or waive for an intentional \
                 identity check)"
                (if t.text = "==" then "equality (==)" else "inequality (!=)")
                (if t.text = "==" then "=" else "<>");
          }
          :: !out)
    toks;
  List.rev !out

(* ---- R3: span pairing (site collection) ---------------------------------- *)

let span_call text =
  if text = "Span.begin_" || String.ends_with ~suffix:".Span.begin_" text then Some true
  else if text = "Span.end_" || String.ends_with ~suffix:".Span.end_" text then Some false
  else None

let sk_of (t : Token.t) =
  if t.kind = Token.Ident && Token.starts_with ~prefix:"Sk_" (Token.last_component t.text) then
    Some (Token.last_component t.text)
  else None

(* Top-level-ish segments for the fallback kind search: a helper may bind
   [begin_ ~at] to a name and apply it to the [Sk_*] constructor a
   statement later (Proxy.span_label does), so when the statement window
   holds no constructor we look across the enclosing let-to-let segment. *)
let segment_bounds (toks : Token.t array) i =
  let n = Array.length toks in
  let seg_start (t : Token.t) =
    t.kind = Token.Ident && t.depth = 0
    && List.mem t.text [ "let"; "type"; "module"; "open"; "exception"; "include" ]
  in
  let a = ref i in
  while !a > 0 && not (seg_start toks.(!a)) do decr a done;
  let b = ref (i + 1) in
  while !b < n && not (seg_start toks.(!b)) do incr b done;
  (!a, !b)

let collect_spans ~file (toks : Token.t array) =
  let out = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if t.kind = Token.Ident then
        match span_call t.text with
        | None -> ()
        | Some is_begin ->
          let kind =
            match List.find_map sk_of (window_fwd toks i) with
            | Some k -> Some k
            | None ->
              let a, b = segment_bounds toks i in
              let found = ref None in
              for j = a to b - 1 do
                if !found = None then found := sk_of toks.(j)
              done;
              !found
          in
          out := { sp_file = file; sp_line = t.line; sp_kind = kind; sp_is_begin = is_begin } :: !out)
    toks;
  List.rev !out

let pair_spans (sites : span_site list) =
  let module M = Map.Make (String) in
  let add is_begin m site =
    let b, e = Option.value ~default:([], []) (M.find_opt (Option.get site.sp_kind) m) in
    M.add (Option.get site.sp_kind)
      (if is_begin then (site :: b, e) else (b, site :: e))
      m
  in
  let unresolved, resolved = List.partition (fun s -> s.sp_kind = None) sites in
  let m =
    List.fold_left (fun m s -> add s.sp_is_begin m s) M.empty resolved
  in
  let findings = ref [] in
  List.iter
    (fun s ->
      findings :=
        {
          rule = r_span;
          file = s.sp_file;
          line = s.sp_line;
          message =
            Printf.sprintf
              "cannot resolve the span kind at this Span.%s call; name the Sk_* constructor in \
               the same statement"
              (if s.sp_is_begin then "begin_" else "end_");
        }
        :: !findings)
    unresolved;
  M.iter
    (fun kind (begins, ends) ->
      let report side (s : span_site) other =
        findings :=
          {
            rule = r_span;
            file = s.sp_file;
            line = s.sp_line;
            message =
              Printf.sprintf
                "Span_%s of %s has no matching Span_%s call site anywhere in the scanned tree — \
                 the %s span can never close, breaking the tiling invariant"
                side kind other kind;
          }
          :: !findings
      in
      if begins <> [] && ends = [] then List.iter (fun s -> report "begin" s "end") begins;
      if ends <> [] && begins = [] then List.iter (fun s -> report "end" s "begin") ends)
    m;
  List.rev !findings

(* ---- R4: counter-name grammar -------------------------------------------- *)

let registration_call text =
  match String.split_on_char '.' text with
  | [ _; "Registry"; ("counter" | "gauge" | "histogram" | "register_pull") ]
  | [ "Registry"; ("counter" | "gauge" | "histogram" | "register_pull") ] ->
    true
  | _ -> false

(* windowed-series registration sites share the registry's name grammar
   plus one extra rule: the literal must carry the "series." prefix the
   runtime enforces, so a typo fails at lint time, not mid-run *)
let series_registration_call text =
  match String.split_on_char '.' text with
  | [ _; "Series"; ("counter" | "sample" | "hist") ]
  | [ "Series"; ("counter" | "sample" | "hist") ] ->
    true
  | _ -> false

let name_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '*' || c = '>' || c = '-'

(* "%d" → "*": format literals name a shape, not a single counter *)
let format_to_glob s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '%' && !i + 1 < n then begin
      let j = ref (!i + 1) in
      while
        !j < n
        && not (String.contains "diuxXosfeEgGbBcdLln%" s.[!j])
      do
        incr j
      done;
      Buffer.add_char buf '*';
      i := !j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let sprintf_like text =
  List.mem (Token.last_component text) [ "sprintf"; "asprintf"; "format" ]

(* The name argument of a registration call, as a glob: string literals
   keep their text (format specifiers become [*]), spliced expressions
   become [*]. [Registry.counter reg ("span." ^ k ^ ".us")] → [span.*.us].
   Non-application occurrences (type annotations, [val] signatures) yield
   [None]: their next token is punctuation, not an argument. *)
let extract_pattern (toks : Token.t array) i =
  let n = Array.length toks in
  (* skip one argument (the registry handle): an ident or a paren group *)
  let skip_arg j =
    if j >= n then None
    else
      match toks.(j).kind with
      | Token.Punct when toks.(j).text = "(" ->
        let d = toks.(j).depth in
        let k = ref (j + 1) in
        while !k < n && not (toks.(!k).kind = Token.Punct && toks.(!k).text = ")" && toks.(!k).depth = d) do
          incr k
        done;
        Some (!k + 1)
      | Token.Ident -> Some (j + 1)
      | _ -> None
  in
  match skip_arg (i + 1) with
  | None -> None
  | Some j when j >= n -> None
  | Some j -> (
    match toks.(j) with
    | { kind = Token.String; text; line; _ } ->
      Some (line, [ (line, text) ], format_to_glob text)
    | { kind = Token.Punct; text = "("; depth; _ } ->
      let pieces = ref [] in
      let glob = Buffer.create 16 in
      let star () =
        if Buffer.length glob = 0 || Buffer.nth glob (Buffer.length glob - 1) <> '*' then
          Buffer.add_char glob '*'
      in
      let k = ref (j + 1) in
      let fin = ref false in
      let sprintf_mode = ref false in
      while (not !fin) && !k < n do
        let t = toks.(!k) in
        if t.kind = Token.Punct && t.text = ")" && t.depth = depth then fin := true
        else begin
          (match t.kind with
          | Token.String ->
            pieces := (t.line, t.text) :: !pieces;
            if not !sprintf_mode then Buffer.add_string glob (format_to_glob t.text)
            else if Buffer.length glob = 0 then Buffer.add_string glob (format_to_glob t.text)
          | Token.Ident when sprintf_like t.text -> sprintf_mode := true
          | Token.Ident | Token.Number | Token.Char ->
            if not !sprintf_mode then star ()
          | Token.Label -> fin := true
          | Token.Punct -> ());
          incr k
        end
      done;
      if Buffer.length glob = 0 then Some (toks.(j).line, List.rev !pieces, "*")
      else Some (toks.(j).line, List.rev !pieces, Buffer.contents glob)
    | { kind = Token.Ident; line; _ } -> Some (line, [], "*")
    | _ -> None)

let check_counters ~file (toks : Token.t array) =
  let findings = ref [] in
  let patterns = ref [] in
  Array.iteri
    (fun i (t : Token.t) ->
      if t.kind = Token.Ident && (registration_call t.text || series_registration_call t.text) then
        match extract_pattern toks i with
        | None -> ()
        | Some (line, pieces, pattern) ->
          List.iter
            (fun (pline, piece) ->
              let bad = String.exists (fun c -> not (name_char c)) (format_to_glob piece) in
              if bad then
                findings :=
                  {
                    rule = r_counter;
                    file;
                    line = pline;
                    message =
                      Printf.sprintf
                        "counter name literal %S contains characters outside [a-z0-9_.*>-]" piece;
                  }
                  :: !findings)
            pieces;
          if pattern <> "*" && not (String.contains pattern '.') then
            findings :=
              {
                rule = r_counter;
                file;
                line;
                message =
                  Printf.sprintf
                    "counter name %S is not dotted; names follow the family.metric convention"
                    pattern;
              }
              :: !findings;
          if
            series_registration_call t.text
            && pattern <> "*"
            && not (String.length pattern >= 7 && String.sub pattern 0 7 = "series.")
          then
            findings :=
              {
                rule = r_counter;
                file;
                line;
                message =
                  Printf.sprintf
                    "series name %S must start with \"series.\" (Stats.Series rejects it at \
                     runtime)"
                    pattern;
              }
              :: !findings;
          patterns := { rp_file = file; rp_line = line; rp_pattern = pattern } :: !patterns)
    toks;
  (List.rev !findings, List.rev !patterns)

let rec glob_match p s pi si =
  let pn = String.length p and sn = String.length s in
  if pi = pn then si = sn
  else if p.[pi] = '*' then glob_match p s (pi + 1) si || (si < sn && glob_match p s pi (si + 1))
  else si < sn && p.[pi] = s.[si] && glob_match p s (pi + 1) (si + 1)

let matches ~pattern name = glob_match pattern name 0 0

(* Baseline coverage: every counter CI's smoke gate checks must still have
   a registration site whose name shape covers it. Catches a rename (or a
   deleted subsystem) at lint time instead of at gate time. *)
let check_baseline ~file lines patterns =
  let findings = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let name =
          match String.index_opt line ' ' with Some sp -> String.sub line 0 sp | None -> line
        in
        if not (List.exists (fun p -> matches ~pattern:p.rp_pattern name) patterns) then
          findings :=
            {
              rule = r_counter;
              file;
              line = lineno;
              message =
                Printf.sprintf
                  "baseline counter %S matches no registration site in the scanned tree — stale \
                   baseline or lost registration"
                  name;
            }
            :: !findings
      end)
    lines;
  List.rev !findings

(* ---- per-file driver ------------------------------------------------------ *)

let analyze_file ~file toks =
  let counter_findings, patterns = check_counters ~file toks in
  {
    ff_findings =
      check_unordered ~file toks @ check_ambient ~file toks @ check_physeq ~file toks
      @ counter_findings;
    ff_spans = collect_spans ~file toks;
    ff_patterns = patterns;
  }
