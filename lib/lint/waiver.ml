type t = { rule : string; reason : string; line : int; mutable used : bool }

type parsed = Waiver of t | Not_a_waiver | Malformed of int * string

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let n = String.length s in
  let a = ref 0 in
  while !a < n && is_space s.[!a] do incr a done;
  let b = ref (n - 1) in
  while !b >= !a && is_space s.[!b] do decr b done;
  String.sub s !a (!b - !a + 1)

let em_dash = "\xe2\x80\x94" (* U+2014, the separator the waiver grammar shows *)

(* [(* lint: allow <rule> — <reason> *)]; [--] and [-] are accepted in
   place of the em dash. The reason is mandatory: a waiver is a proof
   obligation, not an off switch. *)
let of_comment (c : Token.comment) =
  let text = strip c.ctext in
  if not (Token.starts_with ~prefix:"lint:" text) then Not_a_waiver
  else begin
    let body = strip (String.sub text 5 (String.length text - 5)) in
    match String.index_opt body ' ' with
    | Some sp when String.sub body 0 sp = "allow" -> begin
      let rest = strip (String.sub body (sp + 1) (String.length body - sp - 1)) in
      match String.index_opt rest ' ' with
      | None -> Malformed (c.cend, Printf.sprintf "waiver for %S carries no reason" rest)
      | Some sp2 ->
        let rule = String.sub rest 0 sp2 in
        let tail = strip (String.sub rest (sp2 + 1) (String.length rest - sp2 - 1)) in
        let reason =
          if Token.starts_with ~prefix:em_dash tail then
            strip (String.sub tail 3 (String.length tail - 3))
          else if Token.starts_with ~prefix:"--" tail then
            strip (String.sub tail 2 (String.length tail - 2))
          else if Token.starts_with ~prefix:"-" tail then
            strip (String.sub tail 1 (String.length tail - 1))
          else tail
        in
        if reason = "" then
          Malformed (c.cend, Printf.sprintf "waiver for %S carries no reason" rule)
        else Waiver { rule; reason; line = c.cend; used = false }
    end
    | _ ->
      Malformed
        (c.cend, Printf.sprintf "unparseable lint comment %S: expected 'lint: allow <rule> - <reason>'" text)
  end

(* A waiver covers its own (end) line and the next one, so it can sit at
   the end of the offending line or on its own line directly above. *)
let covers t ~line = line = t.line || line = t.line + 1
