(** The checked-in architecture contract ([ci/layers.txt]): named layers
    over directories plus deny edges to identifier prefixes or to other
    layers. See [parse] for the line grammar. *)

type spec =
  | S_layer of string
      (** no identifier of that layer's wrapped library modules, and no
          dune dependency edge into it *)
  | S_prefix of string
      (** identifier prefix: ["Unix."] denies the whole module, an exact
          name like ["Format.printf"] a single value *)

type deny = { d_from : string; d_specs : spec list; d_line : int }

type t = { layers : (string * string list) list; denies : deny list }

val parse : string -> (t, string) result
(** Lines are [layer <name> = <dir>...] or [deny <layer> -> <spec>...];
    [#] comments. Deny edges must reference declared layers. *)

val dirs_of : t -> string -> string list
