let split_lines s = String.split_on_char '\n' s

(* One source file, tokenized, with its parsed waivers and the findings
   malformed lint comments produced. Interfaces contribute waivers (R9
   findings land on .mli lines) but no per-file findings. *)
let scan_source ~file source =
  let toks, comments = Token.tokenize source in
  let waivers = ref [] in
  let bad = ref [] in
  List.iter
    (fun c ->
      match Waiver.of_comment c with
      | Waiver.Not_a_waiver -> ()
      | Waiver.Waiver w ->
        if List.mem w.Waiver.rule Rules.waivable then waivers := w :: !waivers
        else
          bad :=
            {
              Rules.rule = Rules.r_bad_waiver;
              file;
              line = w.Waiver.line;
              message =
                Printf.sprintf "waiver names unknown rule %S (waivable: %s)" w.Waiver.rule
                  (String.concat ", " Rules.waivable);
            }
            :: !bad
      | Waiver.Malformed (line, message) ->
        bad := { Rules.rule = Rules.r_bad_waiver; file; line; message } :: !bad)
    comments;
  let facts =
    if Filename.check_suffix file ".mli" then
      { Rules.ff_findings = []; ff_spans = []; ff_patterns = [] }
    else Rules.analyze_file ~file toks
  in
  (facts, List.rev !waivers, List.rev !bad)

let compare_findings (a : Rules.finding) (b : Rules.finding) =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
  | c -> c

(* [sources] are (display path, contents) — implementations and
   interfaces. [baseline] is ci/smoke-counters.txt, [layers] is
   ci/layers.txt, [dune_files] feed the module graph, [use_sources] are
   reference-only trees (tests/benches/examples): their uses keep an
   export alive, but they are not scanned for findings. *)
let run_sources ?baseline ?layers ?(dune_files = []) ?(use_sources = []) sources =
  let per_file = List.map (fun (file, src) -> (file, scan_source ~file src)) sources in
  let waivers = List.concat_map (fun (_, (_, ws, _)) -> ws) per_file in
  let bad_waivers = List.concat_map (fun (_, (_, _, bs)) -> bs) per_file in
  let facts = List.map (fun (_, (f, _, _)) -> f) per_file in
  let local = List.concat_map (fun f -> f.Rules.ff_findings) facts in
  let spans = List.concat_map (fun f -> f.Rules.ff_spans) facts in
  let patterns = List.concat_map (fun f -> f.Rules.ff_patterns) facts in
  (* the cross-file passes see tokens, not facts *)
  let toks_of = List.map (fun (file, src) -> (file, fst (Token.tokenize src))) sources in
  let use_toks = List.map (fun (file, src) -> (file, fst (Token.tokenize src))) use_sources in
  let libs = Modgraph.parse dune_files in
  let layer_findings =
    match layers with
    | None -> []
    | Some (lfile, lsrc) -> (
      match Layers.parse lsrc with
      | Error message -> [ { Rules.rule = Rules.r_layer; file = lfile; line = 1; message } ]
      | Ok lt -> Rules.check_layers ~layers:lt ~libs toks_of)
  in
  let cross =
    Rules.pair_spans spans
    @ (match baseline with
      | Some (file, contents) -> Rules.check_baseline ~file (split_lines contents) patterns
      | None -> [])
    @ layer_findings
    @ Rules.check_probe_consumers toks_of
    @ Rules.check_dead_exports ~sources:toks_of ~use_sources:use_toks
  in
  let file_waivers = List.map (fun (file, (_, ws, _)) -> (file, ws)) per_file in
  let suppressed (f : Rules.finding) =
    match List.assoc_opt f.file file_waivers with
    | None -> false
    | Some ws -> (
      match
        List.find_opt (fun w -> w.Waiver.rule = f.rule && Waiver.covers w ~line:f.line) ws
      with
      | Some w ->
        w.Waiver.used <- true;
        true
      | None -> false)
  in
  let surviving = List.filter (fun f -> not (suppressed f)) (local @ cross) in
  let unused =
    List.concat_map
      (fun (file, ws) ->
        List.filter_map
          (fun w ->
            if w.Waiver.used then None
            else
              Some
                {
                  Rules.rule = Rules.r_unused_waiver;
                  file;
                  line = w.Waiver.line;
                  message =
                    Printf.sprintf
                      "waiver for %S no longer silences anything — the rule does not fire here; \
                       delete the waiver"
                      w.Waiver.rule;
                })
          ws)
      file_waivers
  in
  let waiver_sites =
    List.sort compare
      (List.concat_map
         (fun (file, ws) ->
           List.map (fun w -> (file, w.Waiver.rule, w.Waiver.reason)) ws)
         file_waivers)
  in
  {
    Report.findings = List.sort compare_findings (surviving @ bad_waivers @ unused);
    files_scanned = List.length sources;
    waivers_total = List.length waivers;
    waivers_used = List.length (List.filter (fun w -> w.Waiver.used) waivers);
    waiver_sites;
  }

(* ---- filesystem walk ----------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* [kinds] selects what the walk collects: sources (.ml/.mli) and/or the
   dune files the module graph is built from. *)
let rec walk_dir ~with_mli abs rel acc =
  let entries = Sys.readdir abs in
  (* Sys.readdir order is filesystem-dependent: sort for a stable report *)
  Array.sort String.compare entries;
  Array.fold_left
    (fun (srcs, dunes) name ->
      if String.length name = 0 || name.[0] = '.' || name = "_build" then (srcs, dunes)
      else
        let abs' = Filename.concat abs name in
        let rel' = if rel = "" then name else rel ^ "/" ^ name in
        if Sys.is_directory abs' then walk_dir ~with_mli abs' rel' (srcs, dunes)
        else if
          Filename.check_suffix name ".ml" || (with_mli && Filename.check_suffix name ".mli")
        then ((rel', abs') :: srcs, dunes)
        else if with_mli && name = "dune" then (srcs, (rel', abs') :: dunes)
        else (srcs, dunes))
    acc entries

let collect ~with_mli root dirs =
  let srcs, dunes =
    List.fold_left
      (fun acc dir ->
        let abs = Filename.concat root dir in
        if Sys.file_exists abs && Sys.is_directory abs then walk_dir ~with_mli abs dir acc
        else acc)
      ([], []) dirs
  in
  let by_path = List.sort (fun (a, _) (b, _) -> String.compare a b) in
  (by_path srcs, by_path dunes)

let run ?baseline ?layers ?(use_dirs = []) ~root ~dirs () =
  let files, dune_files = collect ~with_mli:true root dirs in
  let use_files, _ = collect ~with_mli:false root use_dirs in
  let sources = List.map (fun (rel, abs) -> (rel, read_file abs)) files in
  let use_sources = List.map (fun (rel, abs) -> (rel, read_file abs)) use_files in
  let dune_files = List.map (fun (rel, abs) -> (rel, read_file abs)) dune_files in
  let read_opt = function
    | Some path when Sys.file_exists path -> Some (path, read_file path)
    | _ -> None
  in
  run_sources
    ?baseline:(read_opt baseline)
    ?layers:(read_opt layers)
    ~dune_files ~use_sources sources
