let split_lines s = String.split_on_char '\n' s

(* One source file, tokenized, with its parsed waivers and the findings
   malformed lint comments produced. *)
let scan_source ~file source =
  let toks, comments = Token.tokenize source in
  let waivers = ref [] in
  let bad = ref [] in
  List.iter
    (fun c ->
      match Waiver.of_comment c with
      | Waiver.Not_a_waiver -> ()
      | Waiver.Waiver w ->
        if List.mem w.Waiver.rule Rules.waivable then waivers := w :: !waivers
        else
          bad :=
            {
              Rules.rule = Rules.r_bad_waiver;
              file;
              line = w.Waiver.line;
              message =
                Printf.sprintf "waiver names unknown rule %S (waivable: %s)" w.Waiver.rule
                  (String.concat ", " Rules.waivable);
            }
            :: !bad
      | Waiver.Malformed (line, message) ->
        bad := { Rules.rule = Rules.r_bad_waiver; file; line; message } :: !bad)
    comments;
  (Rules.analyze_file ~file toks, List.rev !waivers, List.rev !bad)

let compare_findings (a : Rules.finding) (b : Rules.finding) =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
  | c -> c

(* [sources] are (display path, contents). The optional [baseline] is
   (display path, contents) of ci/smoke-counters.txt. *)
let run_sources ?baseline sources =
  let per_file = List.map (fun (file, src) -> (file, scan_source ~file src)) sources in
  let waivers = List.concat_map (fun (_, (_, ws, _)) -> ws) per_file in
  let bad_waivers = List.concat_map (fun (_, (_, _, bs)) -> bs) per_file in
  let facts = List.map (fun (_, (f, _, _)) -> f) per_file in
  let local = List.concat_map (fun f -> f.Rules.ff_findings) facts in
  let spans = List.concat_map (fun f -> f.Rules.ff_spans) facts in
  let patterns = List.concat_map (fun f -> f.Rules.ff_patterns) facts in
  let cross =
    Rules.pair_spans spans
    @
    match baseline with
    | Some (file, contents) -> Rules.check_baseline ~file (split_lines contents) patterns
    | None -> []
  in
  let file_waivers = List.map (fun (file, (_, ws, _)) -> (file, ws)) per_file in
  let suppressed (f : Rules.finding) =
    match List.assoc_opt f.file file_waivers with
    | None -> false
    | Some ws -> (
      match
        List.find_opt (fun w -> w.Waiver.rule = f.rule && Waiver.covers w ~line:f.line) ws
      with
      | Some w ->
        w.Waiver.used <- true;
        true
      | None -> false)
  in
  let surviving = List.filter (fun f -> not (suppressed f)) (local @ cross) in
  let unused =
    List.concat_map
      (fun (file, ws) ->
        List.filter_map
          (fun w ->
            if w.Waiver.used then None
            else
              Some
                {
                  Rules.rule = Rules.r_unused_waiver;
                  file;
                  line = w.Waiver.line;
                  message =
                    Printf.sprintf
                      "waiver for %S no longer silences anything — the rule does not fire here; \
                       delete the waiver"
                      w.Waiver.rule;
                })
          ws)
      file_waivers
  in
  {
    Report.findings = List.sort compare_findings (surviving @ bad_waivers @ unused);
    files_scanned = List.length sources;
    waivers_total = List.length waivers;
    waivers_used = List.length (List.filter (fun w -> w.Waiver.used) waivers);
  }

(* ---- filesystem walk ----------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec walk_dir abs rel acc =
  let entries = Sys.readdir abs in
  (* Sys.readdir order is filesystem-dependent: sort for a stable report *)
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if String.length name = 0 || name.[0] = '.' || name = "_build" then acc
      else
        let abs' = Filename.concat abs name in
        let rel' = if rel = "" then name else rel ^ "/" ^ name in
        if Sys.is_directory abs' then walk_dir abs' rel' acc
        else if Filename.check_suffix name ".ml" then (rel', abs') :: acc
        else acc)
    acc entries

let run ?baseline ~root ~dirs () =
  let files =
    List.concat_map
      (fun dir ->
        let abs = Filename.concat root dir in
        if Sys.file_exists abs && Sys.is_directory abs then List.rev (walk_dir abs dir [])
        else [])
      dirs
  in
  let files = List.sort (fun (a, _) (b, _) -> String.compare a b) files in
  let sources = List.map (fun (rel, abs) -> (rel, read_file abs)) files in
  let baseline =
    match baseline with
    | Some path when Sys.file_exists path -> Some (path, read_file path)
    | _ -> None
  in
  run_sources ?baseline sources
