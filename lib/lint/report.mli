(** Findings plus scan statistics, renderable as a human table, the
    machine-readable JSON CI archives (with per-rule counts), a markdown
    step summary, or the waiver inventory the ratchet checks. *)

type t = {
  findings : Rules.finding list;  (** sorted by (file, line, rule) *)
  files_scanned : int;
  waivers_total : int;
  waivers_used : int;
  waiver_sites : (string * string * string) list;
      (** (file, rule, reason), sorted — every waiver comment in the
          scanned tree, used or not *)
}

val by_rule : t -> (string * int) list
(** Finding count per rule, over {!Rules.all_rules} (zeros included). *)

val to_json : t -> string
val to_table : t -> string

val to_summary_md : t -> string
(** Markdown for the CI step summary: per-rule counts, then findings. *)

val to_waivers_txt : t -> string
(** The line-number-free waiver inventory ([<file> <rule> — <reason>]). *)

val check_waivers : t -> inventory:string -> (unit, string list) result
(** Ratchet against a checked-in inventory: errors for waivers missing
    from it (additions need a deliberate baseline refresh) and for
    inventory lines whose waiver no longer exists. *)

val print : ?json:bool -> t -> unit
