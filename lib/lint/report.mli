(** Findings plus scan statistics, renderable as a human table or as the
    machine-readable JSON CI archives. *)

type t = {
  findings : Rules.finding list;  (** sorted by (file, line, rule) *)
  files_scanned : int;
  waivers_total : int;
  waivers_used : int;
}

val to_json : t -> string
val to_table : t -> string
val print : ?json:bool -> t -> unit
