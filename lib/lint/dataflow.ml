(* Def-use dataflow over [Ast] items: statement windows, order-safety
   classification for unordered hash iteration (what used to need a
   waiver per commutative fold), and nondeterminism taint from ambient
   sources through let-bindings and function returns to probe/registry/
   digest/scheduler sinks. Everything here is a sound-for-this-repo
   approximation: "safe" requires positive evidence; anything the
   classifier cannot read stays a finding. *)

(* ---- statement windows ----------------------------------------------------

   "The same expression" for R1/R3: the token window around a site bounded
   by statement-level punctuation. Scanning out from the site we track the
   lowest bracket depth seen so far ([l]); a boundary token only stops the
   scan when it sits at that level, so delimiters inside sibling argument
   groups — the [->] of an inline [fun], the [;] inside its body — are
   crossed freely while the [in]/[;]/[let] that really ends the statement
   is not. *)

let fwd_stop = [ ";"; ";;"; "in"; "let"; "and"; "then"; "else"; "do"; "done"; "->"; "|" ]
let bwd_stop = fwd_stop @ [ "="; "<-"; ":=" ]

let boundary stops (t : Token.t) =
  (match t.kind with Token.Ident | Token.Punct -> true | _ -> false)
  && List.mem t.text stops

let window_fwd (toks : Token.t array) i =
  let n = Array.length toks in
  let out = ref [] in
  let l = ref toks.(i).depth in
  let k = ref (i + 1) in
  let stop = ref false in
  while (not !stop) && !k < n do
    let t = toks.(!k) in
    if t.depth < !l then l := t.depth;
    if boundary fwd_stop t && t.depth <= !l then stop := true
    else begin
      out := t :: !out;
      incr k
    end
  done;
  List.rev !out

let window_bwd (toks : Token.t array) i =
  let out = ref [] in
  let l = ref toks.(i).depth in
  let k = ref (i - 1) in
  let stop = ref false in
  while (not !stop) && !k >= 0 do
    let t = toks.(!k) in
    if t.depth < !l then l := t.depth;
    if boundary bwd_stop t && t.depth <= !l then stop := true
    else begin
      out := t :: !out;
      decr k
    end
  done;
  !out

let statement_window toks i = window_bwd toks i @ (toks.(i) :: window_fwd toks i)

(* ---- shared predicates ---------------------------------------------------- *)

let unordered_op text =
  Token.starts_with ~prefix:"Hashtbl." text
  && List.mem (Token.last_component text) [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let sort_witness (t : Token.t) =
  t.kind = Token.Ident
  && List.mem (Token.last_component t.text) [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let remove_witness (t : Token.t) =
  t.kind = Token.Ident
  && Token.starts_with ~prefix:"Hashtbl." t.text
  && List.mem (Token.last_component t.text) [ "remove"; "reset"; "clear" ]

(* does [from, upto) reference [name] as the head of a path? [stale],
   [stale.field] — but not [t.stale]. *)
let mentions (toks : Token.t array) ~from ~upto name =
  let found = ref false in
  for j = from to min upto (Array.length toks) - 1 do
    let t = toks.(j) in
    if t.kind = Token.Ident then begin
      let head =
        match String.index_opt t.text '.' with
        | None -> t.text
        | Some d -> String.sub t.text 0 d
      in
      if head = name then found := true
    end
  done;
  !found

let slice_exists (toks : Token.t array) ~from ~upto p =
  let found = ref false in
  for j = from to min upto (Array.length toks) - 1 do
    if p toks.(j) then found := true
  done;
  !found

(* ---- fold/iter body extraction -------------------------------------------- *)

(* The inline [(fun p1 … pn -> body)] argument of the application at [i]:
   (last param name, body start, one past body end). None when the
   iteration function is not a literal fun (a named helper — unreadable,
   so unsafe). *)
let fun_arg (toks : Token.t array) i =
  let n = Array.length toks in
  if
    i + 2 < n
    && toks.(i + 1).kind = Token.Punct
    && toks.(i + 1).text = "("
    && toks.(i + 2).kind = Token.Ident
    && toks.(i + 2).text = "fun"
  then begin
    let d = toks.(i + 1).depth in
    (* params run to the first [->] at the fun's depth *)
    let rec find_arrow j last_ident =
      if j >= n || toks.(j).depth <= d then None
      else if toks.(j).kind = Token.Punct && toks.(j).text = "->" && toks.(j).depth = d + 1 then
        Some (last_ident, j)
      else
        find_arrow (j + 1)
          (if toks.(j).kind = Token.Ident then Some toks.(j).text else last_ident)
    in
    match find_arrow (i + 3) None with
    | Some (Some acc, arrow) ->
      (* body ends at the [)] matching the opener *)
      let stop = ref (arrow + 1) in
      while
        !stop < n
        && not (toks.(!stop).kind = Token.Punct && toks.(!stop).text = ")" && toks.(!stop).depth = d)
      do
        incr stop
      done;
      Some (acc, arrow + 1, !stop)
    | _ -> None
  end
  else None

let commutative_ops = [ "+"; "+."; "*"; "*."; "land"; "lor"; "lxor" ]

let add_like (t : Token.t) =
  t.kind = Token.Ident && List.mem (Token.last_component t.text) [ "add"; "min"; "max" ]

(* A fold body is a commutative reduction when every occurrence of the
   accumulator either combines commutatively ([acc + x], [Time.add acc d],
   [min acc x]) or passes through unchanged ([-> acc], [else acc]), and
   the body builds no sequence ([::], [@], [^]). *)
let commutative_fold_body (toks : Token.t array) i =
  match fun_arg toks i with
  | None -> false
  | Some (acc, _, _) when acc = "_" ->
    (* an ignored last parameter means this is an iter, not a fold — there
       is no accumulator whose combination we could prove commutative *)
    false
  | Some (acc, b_start, b_stop) ->
    let builds_seq =
      slice_exists toks ~from:b_start ~upto:b_stop (fun t ->
          t.kind = Token.Punct && List.mem t.text [ "::"; "@"; "^" ])
    in
    if builds_seq then false
    else begin
      let ok = ref true in
      for j = b_start to b_stop - 1 do
        let t = toks.(j) in
        if t.kind = Token.Ident && t.text = acc then begin
          let prev = if j > b_start then Some toks.(j - 1) else None in
          let next = if j + 1 < b_stop then Some toks.(j + 1) else None in
          let ptxt = match prev with Some p -> p.text | None -> "" in
          let ntxt = match next with Some x -> x.text | None -> "" in
          let combined =
            List.mem ptxt commutative_ops || List.mem ntxt commutative_ops
            || (match prev with Some p -> add_like p | None -> false)
            || (* second argument of an add-like application: [add x acc] *)
            (j >= b_start + 2 && toks.(j - 1).kind = Token.Ident && add_like toks.(j - 2))
          in
          let identity =
            List.mem ptxt [ "->"; "then"; "else"; "(" ]
            && List.mem ntxt [ ")"; "then"; "else"; "in"; "|"; ";"; "" ]
          in
          if not (combined || identity) then ok := false
        end
      done;
      !ok
    end

(* An iter body that only fills array cells ([arr.(e) <- v]) is safe when
   a later sort of that array (in the same item) restores a canonical
   order before anything can read it. Returns the fill targets, or None
   when the body performs any other write or unknown call. *)
let array_fill_targets (toks : Token.t array) i =
  match fun_arg toks i with
  | None -> None
  | Some (_, b_start, b_stop) ->
    let targets = ref [] in
    let ok = ref true in
    for j = b_start to b_stop - 1 do
      let t = toks.(j) in
      if t.kind = Token.Punct && t.text = "<-" then begin
        (* expect … Ident "." "(" … ")" "<-" … *)
        if j > b_start && toks.(j - 1).kind = Token.Punct && toks.(j - 1).text = ")" then begin
          let d = toks.(j - 1).depth in
          let k = ref (j - 2) in
          while
            !k >= b_start
            && not (toks.(!k).kind = Token.Punct && toks.(!k).text = "(" && toks.(!k).depth = d)
          do
            decr k
          done;
          if
            !k >= b_start + 2
            && toks.(!k - 1).kind = Token.Punct
            && toks.(!k - 1).text = "."
            && toks.(!k - 2).kind = Token.Ident
          then targets := toks.(!k - 2).text :: !targets
          else ok := false
        end
        else ok := false
      end
    done;
    if !ok && !targets <> [] then Some (List.sort_uniq String.compare !targets) else None

(* ---- R1 order-safety classification ---------------------------------------- *)

type r1_class =
  | R1_safe of string  (* why the order provably cannot escape *)
  | R1_unsafe

(* The binding whose RHS contains token index [i], among the linearized
   statements of the enclosing item body. Returns (binding, statements
   after it). *)
let binding_of stmts i =
  let rec go = function
    | [] -> None
    | Ast.S_def b :: rest when b.Ast.b_rhs_start <= i && i < b.Ast.b_rhs_stop -> Some (b, rest)
    | _ :: rest -> go rest
  in
  go stmts

let stmt_range = function
  | Ast.S_def b -> (b.Ast.b_rhs_start, b.Ast.b_rhs_stop)
  | Ast.S_expr (a, b) -> (a, b)

(* Classify the unordered-iteration site at token [i]. [items] is the
   file's parsed structure (pass [Ast.items toks]). *)
let classify_unordered (toks : Token.t array) ~items i =
  if List.exists sort_witness (statement_window toks i) then
    R1_safe "sorted in the same expression"
  else if Token.last_component toks.(i).Token.text = "fold" && commutative_fold_body toks i then
    R1_safe "commutative reduction"
  else
    match Ast.item_containing items i with
    | None -> R1_unsafe
    | Some it -> (
      let from, upto = Ast.item_body toks it in
      let stmts = Ast.statements toks ~from ~upto in
      let fill_ok () =
        match array_fill_targets toks i with
        | None -> false
        | Some targets ->
          (* a later sort in the same item whose statement names the target *)
          List.for_all
            (fun tgt ->
              let found = ref false in
              for j = i + 1 to upto - 1 do
                if (not !found) && sort_witness toks.(j) then
                  if List.exists (fun (t : Token.t) -> t.kind = Token.Ident && t.text = tgt)
                       (statement_window toks j)
                  then found := true
              done;
              !found)
            targets
      in
      match binding_of stmts i with
      | Some (b, rest) when b.Ast.b_name <> "" ->
        (* every later statement that touches the binding must either
           sort it or only remove table entries with it *)
        let uses =
          List.filter
            (fun s ->
              let a, z = stmt_range s in
              mentions toks ~from:a ~upto:z b.Ast.b_name)
            rest
        in
        let all_ok =
          uses <> []
          && List.for_all
               (fun s ->
                 let a, z = stmt_range s in
                 slice_exists toks ~from:a ~upto:z sort_witness
                 || slice_exists toks ~from:a ~upto:z remove_witness)
               uses
        in
        if all_ok then
          R1_safe "result is sorted or only drives Hashtbl.remove before any read"
        else if fill_ok () then R1_safe "fills an array that is sorted before any read"
        else R1_unsafe
      | _ -> if fill_ok () then R1_safe "fills an array that is sorted before any read" else R1_unsafe)

(* ---- R6 nondeterminism taint ----------------------------------------------- *)

(* Ambient sources: values that differ run-to-run even under the simulated
   clock. Unordered folds also taint the names they are bound to, but only
   when [classify_unordered] could not prove them order-safe. *)
let ambient_source (t : Token.t) =
  if t.kind <> Token.Ident then None
  else if List.mem t.text [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ] then
    Some ("wall clock (" ^ t.text ^ ")")
  else if
    Token.starts_with ~prefix:"Random." t.text
    && not (Token.starts_with ~prefix:"Random.State." t.text)
  then Some ("ambient PRNG (" ^ t.text ^ ")")
  else if t.text = "Hashtbl.hash" || Token.starts_with ~prefix:"Hashtbl.hash_param" t.text then
    Some ("unstable hash (" ^ t.text ^ ")")
  else None

let has_component comp text =
  List.mem comp (String.split_on_char '.' text)

let lowercase_contains ~needle hay =
  let hay = String.lowercase_ascii hay in
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Sinks: places where a nondeterministic value corrupts replay — the
   probe trace and its digest, registry/series telemetry, and simulator
   scheduling decisions. *)
let sink_of (t : Token.t) =
  if t.kind <> Token.Ident then None
  else
    let last = Token.last_component t.text in
    if has_component "Probe" t.text && last <> "active" then Some "the probe trace"
    else if has_component "Span" t.text && List.mem last [ "begin_"; "end_" ] then
      Some "span attribution"
    else if
      has_component "Registry" t.text
      && List.mem last [ "incr"; "incr_by"; "incr_id"; "set"; "observe"; "register_pull" ]
    then Some "registry telemetry"
    else if has_component "Histogram" t.text && last = "observe" then Some "registry telemetry"
    else if
      has_component "Series" t.text && List.mem last [ "incr"; "sample"; "observe"; "annotate" ]
    then Some "series telemetry"
    else if
      has_component "Engine" t.text
      && List.mem last [ "schedule"; "schedule_at"; "periodic"; "run" ]
    then Some "simulator scheduling"
    else if lowercase_contains ~needle:"digest" t.text || lowercase_contains ~needle:"fnv" t.text
    then Some "the trace digest"
    else None

type taint_finding = {
  tf_line : int;  (* the sink site *)
  tf_source : string;
  tf_src_line : int;
  tf_sink : string;
  tf_via : string list;  (* binding chain, source-first *)
}

type taint = { t_source : string; t_src_line : int; t_via : string list }

(* Is [from, upto) tainted? Checks ambient sources directly and references
   to tainted names (local env + module-level tainted functions). *)
let slice_taint (toks : Token.t array) ~from ~upto env =
  let best = ref None in
  for j = from to min upto (Array.length toks) - 1 do
    if !best = None then begin
      let t = toks.(j) in
      (match ambient_source t with
      | Some src -> best := Some { t_source = src; t_src_line = t.line; t_via = [] }
      | None -> ());
      if !best = None && t.kind = Token.Ident then begin
        let head =
          match String.index_opt t.text '.' with
          | None -> t.text
          | Some d -> String.sub t.text 0 d
        in
        match List.assoc_opt head env with
        | Some taint -> best := Some taint
        | None -> ()
      end
    end
  done;
  !best

let check_taint (toks : Token.t array) =
  let items = Ast.items toks in
  let findings = ref [] in
  (* names of top-level functions whose result carries taint *)
  let module_env = ref [] in
  let sink_check env ~from ~upto =
    (* a sink call in a slice that also holds a tainted value *)
    let sink = ref None in
    for j = from to min upto (Array.length toks) - 1 do
      if !sink = None then
        match sink_of toks.(j) with
        | Some s -> sink := Some (s, toks.(j).line)
        | None -> ()
    done;
    match !sink with
    | None -> ()
    | Some (sink_name, sink_line) -> (
      match slice_taint toks ~from ~upto env with
      | None -> ()
      | Some taint ->
        findings :=
          {
            tf_line = sink_line;
            tf_source = taint.t_source;
            tf_src_line = taint.t_src_line;
            tf_sink = sink_name;
            tf_via = List.rev taint.t_via;
          }
          :: !findings)
  in
  List.iter
    (fun it ->
      if it.Ast.it_kind = Ast.K_let then begin
        let from, upto = Ast.item_body toks it in
        let stmts = Ast.statements toks ~from ~upto in
        let env = ref !module_env in
        let last_taint = ref None in
        List.iter
          (fun s ->
            match s with
            | Ast.S_def b ->
              let a, z = (b.Ast.b_rhs_start, b.Ast.b_rhs_stop) in
              sink_check !env ~from:a ~upto:z;
              let killed = slice_exists toks ~from:a ~upto:z sort_witness in
              let taint =
                if killed then None
                else
                  match slice_taint toks ~from:a ~upto:z !env with
                  | Some t -> Some t
                  | None ->
                    (* an unordered fold the classifier cannot prove safe
                       taints the name it is bound to *)
                    let fold = ref None in
                    for j = a to min z (Array.length toks) - 1 do
                      if
                        !fold = None
                        && toks.(j).kind = Token.Ident
                        && unordered_op toks.(j).text
                        && classify_unordered toks ~items j = R1_unsafe
                      then
                        fold :=
                          Some
                            {
                              t_source = "unordered " ^ toks.(j).text;
                              t_src_line = toks.(j).line;
                              t_via = [];
                            }
                    done;
                    !fold
              in
              (match taint with
              | Some t when b.Ast.b_name <> "" ->
                env := (b.Ast.b_name, { t with t_via = b.Ast.b_name :: t.t_via }) :: !env
              | _ -> ());
              last_taint := None
            | Ast.S_expr (a, z) ->
              sink_check !env ~from:a ~upto:z;
              last_taint :=
                if slice_exists toks ~from:a ~upto:z sort_witness then None
                else
                  (* only ambient taint crosses item boundaries: a returned
                     unordered fold is R1's finding, not a new one here *)
                  slice_taint toks ~from:a ~upto:z !env)
          stmts;
        (* a function whose final expression is tainted taints its name
           module-wide: callers hand the result to sinks without ever
           naming the source (the PR 8 Reliable_fifo miss) *)
        match !last_taint with
        | Some t ->
          List.iter
            (fun (nm, _) ->
              if nm <> "" then module_env := (nm, { t with t_via = nm :: t.t_via }) :: !module_env)
            it.Ast.it_names
        | None -> ()
      end)
    items;
  List.rev !findings
