type action =
  | Cut of string
  | Heal of string
  | Partition of Sim.Topology.site list
  | Heal_partition of Sim.Topology.site list
  | Crash_serializer of string
  | Crash_replica of { serializer : string; replica : int }
  | Latency_factor of { link : string; factor : float }
  | Latency_reset of string
  | Clock_bump of { clock : string; skew_us : int }
  | Switch_config of { graceful : bool; config : Saturn.Config.t }

type event = { at : Sim.Time.t; action : action }
type t = { events : event list }

let make events =
  { events = List.stable_sort (fun a b -> Sim.Time.compare a.at b.at) events }

let events t = t.events
let is_empty t = t.events = []

let restorative = function
  | Heal _ | Heal_partition _ | Latency_reset _ -> true
  | Cut _ | Partition _ | Crash_serializer _ | Crash_replica _ | Latency_factor _ | Clock_bump _
  | Switch_config _ ->
    false

let last_heal_time t =
  List.fold_left
    (fun acc e -> if restorative e.action then Some e.at else acc)
    None t.events

(* ---- seeded random plans ------------------------------------------------- *)

let random ~seed ~link_names ~serializer_names ~clock_names ~max_replica_crashes ?switch ~horizon
    () =
  let rng = Sim.Rng.create ~seed in
  let h = Sim.Time.to_us horizon in
  let pick l = List.nth l (Sim.Rng.int rng (List.length l)) in
  let at_before limit = Sim.Time.of_us (Sim.Rng.int rng (max 1 limit)) in
  let evs = ref [] in
  let push at action = evs := { at; action } :: !evs in
  (* transient link outages: each cut heals strictly before the horizon *)
  if link_names <> [] then begin
    let n_outages = 1 + Sim.Rng.int rng 3 in
    for _ = 1 to n_outages do
      let l = pick link_names in
      let cut_at = at_before (h * 2 / 3) in
      let heal_at =
        Sim.Time.add cut_at (Sim.Time.of_us (1 + Sim.Rng.int rng (h - Sim.Time.to_us cut_at - 1)))
      in
      push cut_at (Cut l);
      push heal_at (Heal l)
    done;
    (* one latency spike, always reset *)
    let l = pick link_names in
    let spike_at = at_before (h / 2) in
    let reset_at =
      Sim.Time.add spike_at (Sim.Time.of_us (1 + Sim.Rng.int rng (h - Sim.Time.to_us spike_at - 1)))
    in
    push spike_at (Latency_factor { link = l; factor = 2. +. float_of_int (Sim.Rng.int rng 7) });
    push reset_at (Latency_reset l)
  end;
  (* replica crashes: never the whole chain *)
  List.iter
    (fun s ->
      let n = Sim.Rng.int rng (max_replica_crashes + 1) in
      for r = 0 to n - 1 do
        push (at_before h) (Crash_replica { serializer = s; replica = r })
      done)
    serializer_names;
  (* bounded clock skew *)
  List.iter
    (fun c ->
      if Sim.Rng.int rng 2 = 1 then
        push (at_before h) (Clock_bump { clock = c; skew_us = Sim.Rng.int rng 5_000 - 2_500 }))
    clock_names;
  (* at most one online reconfiguration, early enough to complete: graceful
     half the time, forced otherwise *)
  (match switch with
  | Some config ->
    if Sim.Rng.int rng 2 = 1 then
      push (at_before (h / 2)) (Switch_config { graceful = Sim.Rng.int rng 2 = 1; config })
  | None -> ());
  make !evs

(* ---- printing ------------------------------------------------------------ *)

let pp_sites fmt sites =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int sites))

let pp_action fmt = function
  | Cut l -> Format.fprintf fmt "cut %s" l
  | Heal l -> Format.fprintf fmt "heal %s" l
  | Partition side -> Format.fprintf fmt "partition %a" pp_sites side
  | Heal_partition side -> Format.fprintf fmt "heal-partition %a" pp_sites side
  | Crash_serializer s -> Format.fprintf fmt "crash %s" s
  | Crash_replica { serializer; replica } ->
    Format.fprintf fmt "crash %s/replica%d" serializer replica
  | Latency_factor { link; factor } -> Format.fprintf fmt "latency %s x%.1f" link factor
  | Latency_reset l -> Format.fprintf fmt "latency %s reset" l
  | Clock_bump { clock; skew_us } -> Format.fprintf fmt "clock-bump %s %+dus" clock skew_us
  | Switch_config { graceful; config = _ } ->
    Format.fprintf fmt "switch-config %s" (if graceful then "graceful" else "forced")

let pp fmt t =
  List.iter
    (fun e -> Format.fprintf fmt "@[t=%dus %a@]@." (Sim.Time.to_us e.at) pp_action e.action)
    t.events
