type t = { plan : Plan.t; mutable applied : int }

let validate reg plan =
  (* epoch-2 names ("e2.…") only come into existence when the plan's
     Switch_config fires mid-run, so their validation is deferred to fire
     time (the Registry lookups still fail loudly there); everything else
     is validated eagerly, before the run spends any simulated time *)
  let switch_seen = ref false in
  let deferred name = !switch_seen && String.length name > 3 && String.sub name 0 3 = "e2." in
  let check_link l = if not (deferred l) then ignore (Registry.link reg l) in
  let check_ser s = if not (deferred s) then ignore (Registry.serializer_down reg s) in
  List.iter
    (fun (e : Plan.event) ->
      match e.action with
      | Plan.Cut l | Plan.Heal l | Plan.Latency_reset l -> check_link l
      | Plan.Latency_factor { link; factor } ->
        check_link link;
        if factor <= 0. then invalid_arg "Faults.Injector: latency factor must be positive"
      | Plan.Crash_serializer s -> check_ser s
      | Plan.Crash_replica { serializer; _ } -> check_ser serializer
      | Plan.Clock_bump { clock; skew_us = _ } ->
        if not (List.mem clock (Registry.clock_names reg)) then
          invalid_arg (Printf.sprintf "Faults.Injector: unknown clock %S" clock)
      | Plan.Switch_config _ ->
        if not (Registry.can_switch reg) then
          invalid_arg "Faults.Injector: switch-config needs a reconfigurable (Saturn) system";
        if !switch_seen then
          invalid_arg "Faults.Injector: at most one switch-config per plan (one switch per system)";
        switch_seen := true
      | Plan.Partition _ | Plan.Heal_partition _ -> ())
    (Plan.events plan)

let scale_latency base factor =
  Sim.Time.of_us (int_of_float (ceil (float_of_int (Sim.Time.to_us base) *. factor)))

let arm ?registry engine reg plan =
  validate reg plan;
  let counter name =
    match registry with
    | None -> None
    | Some r -> Some (Stats.Registry.counter r ("faults." ^ name))
  in
  let cuts = counter "cuts"
  and heals = counter "heals"
  and crashes = counter "crashes"
  and spikes = counter "latency_spikes"
  and bumps = counter "clock_bumps"
  and switches = counter "switches" in
  let bump = function Some c -> Stats.Registry.incr c | None -> () in
  let t = { plan; applied = 0 } in
  let apply (action : Plan.action) =
    (match action with
    | Plan.Cut l ->
      Sim.Link.cut (Registry.link reg l);
      bump cuts
    | Plan.Heal l ->
      Sim.Link.restore (Registry.link reg l);
      bump heals
    | Plan.Partition side ->
      List.iter
        (fun (_, l) ->
          Sim.Link.cut l;
          bump cuts)
        (Registry.links_crossing reg ~side)
    | Plan.Heal_partition side ->
      List.iter
        (fun (_, l) ->
          Sim.Link.restore l;
          bump heals)
        (Registry.links_crossing reg ~side)
    | Plan.Crash_serializer s ->
      Registry.crash_serializer reg s;
      bump crashes
    | Plan.Crash_replica { serializer; replica } ->
      Registry.crash_replica reg serializer ~replica;
      bump crashes
    | Plan.Latency_factor { link; factor } ->
      Sim.Link.set_latency (Registry.link reg link)
        (scale_latency (Registry.base_latency reg link) factor);
      bump spikes
    | Plan.Latency_reset link ->
      Sim.Link.set_latency (Registry.link reg link) (Registry.base_latency reg link)
    | Plan.Clock_bump { clock; skew_us } ->
      Registry.bump_clock reg clock (Sim.Time.of_us skew_us);
      bump bumps
    | Plan.Switch_config { graceful; config } ->
      Registry.switch_config reg ~graceful config;
      bump switches);
    t.applied <- t.applied + 1
  in
  List.iter
    (fun (e : Plan.event) -> Sim.Engine.schedule_at engine e.at (fun () -> apply e.action))
    (Plan.events plan);
  t

let events_applied t = t.applied
