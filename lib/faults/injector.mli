(** Binds a fault plan to a live deployment.

    {!arm} resolves every plan event against the fault registry and
    schedules it on the engine; from then on the simulation breaks and
    heals itself on the planned timeline. Each applied event increments a
    [faults.*] counter in the metric registry, so a run's fault activity
    shows up in the same snapshot as everything else. *)

type t

val arm : ?registry:Stats.Registry.t -> Sim.Engine.t -> Registry.t -> Plan.t -> t
(** Validates eagerly: every name the plan mentions must already be
    registered, so a typo fails at arm time, not mid-run. Exception:
    [e2.]-prefixed names appearing after a [Switch_config] event refer to
    the epoch-2 tree that only exists once the switch fires, so they are
    validated at fire time instead. A [Switch_config] itself requires a
    reconfigurable (Saturn, non-peer) system, at most once per plan.
    @raise Invalid_argument on an unknown name. *)

val events_applied : t -> int
(** Plan events executed so far (simulation-time progress). *)
