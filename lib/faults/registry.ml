type link_entry = {
  l : Sim.Link.t;
  site_a : Sim.Topology.site;
  site_b : Sim.Topology.site;
  base_latency : Sim.Time.t;
}

type serializer_entry = {
  crash_all : unit -> unit;
  crash_rep : int -> unit;
  is_down : unit -> bool;
}

type t = {
  links : (string, link_entry) Hashtbl.t;
  serializers : (string, serializer_entry) Hashtbl.t;
  clocks : (string, Sim.Time.t -> unit) Hashtbl.t;
  mutable switch : (graceful:bool -> Saturn.Config.t -> unit) option;
      (* installed by [bind_system]: drives the live system's reconfiguration
         and registers the epoch-2 tree's pieces under the [e2.] prefix *)
}

let create () =
  { links = Hashtbl.create 64; serializers = Hashtbl.create 8; clocks = Hashtbl.create 8;
    switch = None }

let fresh table ~kind name =
  if Hashtbl.mem table name then
    invalid_arg (Printf.sprintf "Faults.Registry: duplicate %s %S" kind name)

let register_link t ~name ~site_a ~site_b l =
  fresh t.links ~kind:"link" name;
  Hashtbl.replace t.links name { l; site_a; site_b; base_latency = Sim.Link.latency l }

let register_serializer t ~name ~site:_ ~crash_all ~crash_replica ~down =
  fresh t.serializers ~kind:"serializer" name;
  Hashtbl.replace t.serializers name { crash_all; crash_rep = crash_replica; is_down = down }

let register_clock t ~name ~bump =
  fresh t.clocks ~kind:"clock" name;
  Hashtbl.replace t.clocks name bump

let missing kind name = invalid_arg (Printf.sprintf "Faults.Registry: unknown %s %S" kind name)

let link_entry t name =
  match Hashtbl.find_opt t.links name with Some e -> e | None -> missing "link" name

let link t name = (link_entry t name).l
let base_latency t name = (link_entry t name).base_latency

let serializer_entry t name =
  match Hashtbl.find_opt t.serializers name with Some e -> e | None -> missing "serializer" name

let crash_serializer t name = (serializer_entry t name).crash_all ()
let crash_replica t name ~replica = (serializer_entry t name).crash_rep replica
let serializer_down t name = (serializer_entry t name).is_down ()

let bump_clock t name d =
  match Hashtbl.find_opt t.clocks name with Some bump -> bump d | None -> missing "clock" name

let sorted_keys table =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let link_names t = sorted_keys t.links
let serializer_names t = sorted_keys t.serializers
let clock_names t = sorted_keys t.clocks

let links_crossing t ~side =
  let inside s = List.mem s side in
  Hashtbl.fold
    (fun name e acc ->
      if inside e.site_a <> inside e.site_b then (name, e.l) :: acc else acc)
    t.links []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- binding built deployments ------------------------------------------ *)

let register_bulk t ~dc_sites ~bulk_link =
  let n = Array.length dc_sites in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        register_link t
          ~name:(Printf.sprintf "bulk.dc%d->dc%d" i j)
          ~site_a:dc_sites.(i) ~site_b:dc_sites.(j) (bulk_link ~src:i ~dst:j)
    done
  done

(* One service instance's breakable pieces. [prefix] is "" for the original
   tree; the epoch-2 tree installed by a [Switch_config] registers under
   "e2." so its serializers and links are addressable alongside (not in
   place of) the old tree's during the migration window. *)
let register_service t ~prefix ~dc_sites service =
  let config = Saturn.Service.config service in
  for s = 0 to Saturn.Service.n_serializers service - 1 do
    register_serializer t ~name:(Printf.sprintf "%sser%d" prefix s)
      ~site:(Saturn.Config.site_of_serializer config s)
      ~crash_all:(fun () -> Saturn.Service.crash_serializer service s)
      ~crash_replica:(fun replica -> Saturn.Service.crash_replica service ~serializer:s ~replica)
      ~down:(fun () -> Saturn.Service.serializer_down service s)
  done;
  List.iter
    (fun ((a, b), (data, ack)) ->
      let sa = Saturn.Config.site_of_serializer config a in
      let sb = Saturn.Config.site_of_serializer config b in
      register_link t ~name:(Printf.sprintf "%stree.s%d->s%d.data" prefix a b) ~site_a:sa
        ~site_b:sb data;
      register_link t ~name:(Printf.sprintf "%stree.s%d->s%d.ack" prefix a b) ~site_a:sa ~site_b:sb
        ack)
    (Saturn.Service.edge_link_list service);
  Array.iteri
    (fun dc _ ->
      let s = Saturn.Tree.serializer_of (Saturn.Config.tree config) ~dc in
      let dc_site = Saturn.Config.site_of_dc config dc in
      let ser_site = Saturn.Config.site_of_serializer config s in
      let al = Saturn.Service.attach_links service ~dc in
      let reg name ~flip l =
        let site_a, site_b = if flip then (ser_site, dc_site) else (dc_site, ser_site) in
        register_link t ~name:(Printf.sprintf "%sattach.dc%d.%s" prefix dc name) ~site_a ~site_b l
      in
      reg "in.data" ~flip:false al.Saturn.Service.in_data;
      reg "in.ack" ~flip:true al.Saturn.Service.in_ack;
      reg "out.data" ~flip:true al.Saturn.Service.out_data;
      reg "out.ack" ~flip:false al.Saturn.Service.out_ack)
    dc_sites

let bind_system t system =
  let p = Saturn.System.params system in
  register_bulk t ~dc_sites:p.Saturn.System.dc_sites
    ~bulk_link:(fun ~src ~dst -> Saturn.System.bulk_link system ~src ~dst);
  Array.iteri
    (fun dc _ ->
      let dcx = Saturn.System.datacenter system dc in
      register_clock t ~name:(Printf.sprintf "clock.dc%d" dc)
        ~bump:(fun d -> Saturn.Datacenter.bump_clock dcx d))
    p.Saturn.System.dc_sites;
  match Saturn.System.service system with
  | None -> ()
  | Some service ->
    register_service t ~prefix:"" ~dc_sites:p.Saturn.System.dc_sites service;
    t.switch <-
      Some
        (fun ~graceful config ->
          Saturn.System.switch_config system config ~graceful;
          match Saturn.System.next_service system with
          | Some s2 -> register_service t ~prefix:"e2." ~dc_sites:p.Saturn.System.dc_sites s2
          | None -> ())

let can_switch t = t.switch <> None

let switch_config t ~graceful config =
  match t.switch with
  | Some f -> f ~graceful config
  | None -> invalid_arg "Faults.Registry: no reconfigurable system bound (switch-config)"

let bind_fabric t fabric =
  let p = Baselines.Common.params fabric in
  register_bulk t ~dc_sites:p.Baselines.Common.dc_sites
    ~bulk_link:(fun ~src ~dst -> Baselines.Common.bulk_link fabric ~src ~dst)
