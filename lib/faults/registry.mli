(** Fault registry: the naming layer between fault plans and a live
    deployment.

    A built system registers its breakable pieces — links, serializers,
    datacenter clocks — under stable, human-readable names ([bulk.dc0->dc2],
    [tree.s0->s1.data], [ser1], [clock.dc0]). Plans then refer to topology
    by name only, which is what makes a fault schedule declarative,
    printable and reusable across deployments of the same shape.

    Every endpoint is tagged with its geographic site, so a full network
    partition is expressible as a site bipartition: {!links_crossing}
    returns every registered link with exactly one endpoint inside the
    given side, and the injector cuts them all.

    {!bind_system} (and {!bind_fabric} for the baselines' shared data
    plane) walk a built deployment and perform the registrations; they are
    invoked by [Harness.Build] when a registry is threaded into the build,
    the same way [?registry] threads the metric registry. *)

type t

val create : unit -> t

(** {2 Registration} *)

val register_link :
  t -> name:string -> site_a:Sim.Topology.site -> site_b:Sim.Topology.site -> Sim.Link.t -> unit
(** Records the link's current latency as its base latency (for
    {!base_latency} and latency-spike resets).
    @raise Invalid_argument on a duplicate name. *)

val register_serializer :
  t ->
  name:string ->
  site:Sim.Topology.site ->
  crash_all:(unit -> unit) ->
  crash_replica:(int -> unit) ->
  down:(unit -> bool) ->
  unit
(** @raise Invalid_argument on a duplicate name. *)

(** {2 Lookup} — all raise [Invalid_argument] naming the missing entry, so
    a plan referring to topology that was never registered fails loudly. *)

val link : t -> string -> Sim.Link.t
val base_latency : t -> string -> Sim.Time.t
val crash_serializer : t -> string -> unit
val crash_replica : t -> string -> replica:int -> unit
val serializer_down : t -> string -> bool
val bump_clock : t -> string -> Sim.Time.t -> unit

val link_names : t -> string list
(** Name-sorted, hence deterministic. *)

val serializer_names : t -> string list
val clock_names : t -> string list

val links_crossing : t -> side:Sim.Topology.site list -> (string * Sim.Link.t) list
(** Every registered link with exactly one endpoint site in [side] —
    the cut set of the bipartition (side, rest). Name-sorted. *)

(** {2 Binding a built deployment} *)

val bind_system : t -> Saturn.System.t -> unit
(** Registers a Saturn deployment: [bulk.dc<i>->dc<j>] for every directed
    bulk link, [clock.dc<i>] per datacenter, and — unless the system runs
    in peer mode — [ser<s>] per serializer, [tree.s<a>->s<b>.data]/[.ack]
    per directed tree edge, and [attach.dc<i>.{in,out}.{data,ack}] for the
    datacenter↔serializer channels. Also arms {!switch_config}: driving a
    reconfiguration registers the epoch-2 tree's serializers and links
    under the same names with an [e2.] prefix, so later plan events can cut
    or crash the new tree during the migration window. *)

val can_switch : t -> bool
(** Whether a reconfigurable (Saturn, non-peer) system is bound. *)

val switch_config : t -> graceful:bool -> Saturn.Config.t -> unit
(** Drives {!Saturn.System.switch_config} on the bound system, then
    registers the epoch-2 pieces under the [e2.] prefix.
    @raise Invalid_argument when no reconfigurable system is bound. *)

val bind_fabric : t -> Baselines.Common.t -> unit
(** Registers a baseline's shared data plane: its [bulk.dc<i>->dc<j>]
    links. Baselines have no serializers or disciplined clocks to break. *)
