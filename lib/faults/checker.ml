type violation = { at : Sim.Time.t; what : string }

type report = {
  violations : violation list;
  commits : int;
  resends : int;
  drops_cut : int;
  drops_down : int;
  head_changes : int;
  fallback_activations : int;
}

let analyze probe =
  let events = Sim.Probe.events probe in
  if events = [] && Sim.Probe.count probe > 0 then
    invalid_arg "Faults.Checker.analyze: probe was created with ~keep:false";
  let violations = ref [] in
  let flag at what = violations := { at; what } :: !violations in
  (* (serializer, origin) -> last committed per-origin seq *)
  let commit_seq : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  (* dc -> last sink-emitted ts *)
  let sink_ts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* (dc, src_dc) -> last applied ts *)
  let apply_ts : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let commits = ref 0
  and resends = ref 0
  and drops_cut = ref 0
  and drops_down = ref 0
  and head_changes = ref 0
  and fallbacks = ref 0 in
  List.iter
    (fun (at, ev) ->
      match (ev : Sim.Probe.event) with
      | Sim.Probe.Ser_commit { ser; origin; oseq } ->
        incr commits;
        (match Hashtbl.find_opt commit_seq (ser, origin) with
        | Some prev when oseq = prev ->
          flag at
            (Printf.sprintf "duplicate commit at ser%d: origin dc%d seq %d committed twice" ser
               origin oseq)
        | Some prev when oseq < prev ->
          flag at
            (Printf.sprintf "FIFO violation at ser%d: origin dc%d seq %d after seq %d" ser origin
               oseq prev)
        | _ -> Hashtbl.replace commit_seq (ser, origin) oseq)
      | Sim.Probe.Sink_emit { dc; ts } ->
        (match Hashtbl.find_opt sink_ts dc with
        | Some prev when ts < prev ->
          flag at (Printf.sprintf "sink order violation at dc%d: ts %d after ts %d" dc ts prev)
        | _ -> ());
        Hashtbl.replace sink_ts dc ts
      | Sim.Probe.Proxy_apply { dc; src_dc; ts; gear = _; fallback = _ } -> (
        match Hashtbl.find_opt apply_ts (dc, src_dc) with
        | Some prev when ts <= prev ->
          flag at
            (Printf.sprintf "proxy order violation at dc%d: src dc%d ts %d after ts %d" dc src_dc
               ts prev)
        | _ -> Hashtbl.replace apply_ts (dc, src_dc) ts)
      | Sim.Probe.Fifo_resend _ -> incr resends
      | Sim.Probe.Link_drop { in_flight } -> if in_flight then incr drops_cut else incr drops_down
      | Sim.Probe.Head_change _ -> incr head_changes
      | Sim.Probe.Proxy_mode { mode = Sim.Probe.Fallback; _ } -> incr fallbacks
      | _ -> ())
    events;
  {
    violations = List.rev !violations;
    commits = !commits;
    resends = !resends;
    drops_cut = !drops_cut;
    drops_down = !drops_down;
    head_changes = !head_changes;
    fallback_activations = !fallbacks;
  }

let ok r = r.violations = []

let pp fmt r =
  Format.fprintf fmt
    "@[<v>commits=%d resends=%d drops(cut)=%d drops(down)=%d head-changes=%d fallbacks=%d@," r.commits
    r.resends r.drops_cut r.drops_down r.head_changes r.fallback_activations;
  (match r.violations with
  | [] -> Format.fprintf fmt "invariants: OK"
  | vs ->
    Format.fprintf fmt "invariants: %d VIOLATION(S)" (List.length vs);
    List.iter (fun v -> Format.fprintf fmt "@,  t=%dus %s" (Sim.Time.to_us v.at) v.what) vs);
  Format.fprintf fmt "@]"
