type violation = { at : Sim.Time.t; what : string }

type report = {
  violations : violation list;
  commits : int;
  resends : int;
  drops_cut : int;
  drops_down : int;
  head_changes : int;
  fallback_activations : int;
  switches : int;
}

let analyze probe =
  let events = Sim.Probe.events probe in
  if events = [] && Sim.Probe.count probe > 0 then
    invalid_arg "Faults.Checker.analyze: probe was created with ~keep:false";
  let violations = ref [] in
  let flag at what = violations := { at; what } :: !violations in
  (* (epoch, serializer, origin) -> last committed per-origin seq; epoch-2
     serializer ids and per-origin uid counters both restart at 0, so the
     exactly-once/FIFO key must carry the epoch to stay collision-free
     across the migration window *)
  let commit_seq : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  (* dc -> last sink-emitted ts *)
  let sink_ts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* (dc, src_dc) -> last applied ts *)
  let apply_ts : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  (* (dc, src_dc, ts, gear) -> () — old/new tree races must not install one
     label twice *)
  let applied : (int * int * int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* origin dc -> highest tree epoch its labels have entered: a sink never
     routes back into an older tree *)
  let route_epoch : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* origin dc -> (epoch the marker closed, marker oseq): the epoch-change
     marker must be the last label the origin pushed through the old tree *)
  let marker_oseq : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let check_marker_last at ~what ~origin ~oseq ~epoch =
    match Hashtbl.find_opt marker_oseq origin with
    | Some (closed_epoch, mseq) when epoch = closed_epoch && oseq > mseq ->
      flag at
        (Printf.sprintf
           "epoch-%d %s after marker: origin dc%d seq %d follows epoch-change marker seq %d"
           epoch what origin oseq mseq)
    | _ -> ()
  in
  let commits = ref 0
  and resends = ref 0
  and drops_cut = ref 0
  and drops_down = ref 0
  and head_changes = ref 0
  and fallbacks = ref 0
  and switches = ref 0 in
  (* the event loop pops its keyed heap in (time, scheduling-seq) order, so
     the step stream must be strictly increasing under that lexicographic
     key — anything else means the engine replayed or reordered work *)
  let last_step : (int * int) option ref = ref None in
  (* every delivered or dropped message was first sent: the running link
     conservation law [delivers + drops <= sends] *)
  let link_sends = ref 0 and link_delivers = ref 0 and link_drops = ref 0 in
  let link_conserved at =
    if !link_delivers + !link_drops > !link_sends then
      flag at
        (Printf.sprintf "link conservation violated: %d delivered + %d dropped > %d sent"
           !link_delivers !link_drops !link_sends)
  in
  (* (dc, src) -> last version-vector entry: baselines emit Vec_advance
     only when the entry strictly advances, so equality is a violation *)
  let vec_ts : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  (* epochs announced by Switch_begin; (dc, epoch) pairs already done *)
  let switch_epochs : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let switch_done : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (at, ev) ->
      match (ev : Sim.Probe.event) with
      | Sim.Probe.Engine_step { seq } ->
        let us = Sim.Time.to_us at in
        (match !last_step with
        | Some (pus, pseq) when us < pus || (us = pus && seq <= pseq) ->
          flag at
            (Printf.sprintf
               "event loop order regression: step (t=%dus, seq %d) after (t=%dus, seq %d)" us seq
               pus pseq)
        | _ -> ());
        last_step := Some (us, seq)
      | Sim.Probe.Link_send { size_bytes } ->
        incr link_sends;
        if size_bytes < 0 then
          flag at (Printf.sprintf "link send with negative size: %d bytes" size_bytes)
      | Sim.Probe.Link_deliver ->
        incr link_delivers;
        link_conserved at
      | Sim.Probe.Serializer_hop { from_ser; to_ser } ->
        if from_ser = to_ser then
          flag at (Printf.sprintf "serializer self-hop: ser%d forwarded to itself" from_ser)
      | Sim.Probe.Serializer_deliver { dc } ->
        if dc < 0 then flag at (Printf.sprintf "serializer egress toward invalid dc%d" dc)
      | Sim.Probe.Delay_wait { serializer; us } ->
        if us < 0 then
          flag at (Printf.sprintf "negative artificial delay at ser%d: %dus" serializer us)
      | Sim.Probe.Chain_ack { seq } ->
        if seq < 0 then flag at (Printf.sprintf "chain ack for invalid seq %d" seq)
      | Sim.Probe.Vec_advance { dc; src; ts } ->
        (match Hashtbl.find_opt vec_ts (dc, src) with
        | Some prev when ts <= prev ->
          flag at
            (Printf.sprintf "version vector regression at dc%d: entry for dc%d moved %d -> %d" dc
               src prev ts)
        | _ -> ());
        Hashtbl.replace vec_ts (dc, src) ts
      | Sim.Probe.Switch_done { dc; epoch } ->
        if not (Hashtbl.mem switch_epochs epoch) then
          flag at
            (Printf.sprintf "dc%d finished migrating to epoch %d that no Switch_begin announced" dc
               epoch)
        else if Hashtbl.mem switch_done (dc, epoch) then
          flag at (Printf.sprintf "dc%d finished migrating to epoch %d twice" dc epoch)
        else Hashtbl.replace switch_done (dc, epoch) ()
      | Sim.Probe.Ser_commit { ser; origin; oseq; epoch } ->
        incr commits;
        check_marker_last at ~what:"commit" ~origin ~oseq ~epoch;
        (match Hashtbl.find_opt commit_seq (epoch, ser, origin) with
        | Some prev when oseq = prev ->
          flag at
            (Printf.sprintf "duplicate commit at ser%d: origin dc%d seq %d committed twice" ser
               origin oseq)
        | Some prev when oseq < prev ->
          flag at
            (Printf.sprintf "FIFO violation at ser%d: origin dc%d seq %d after seq %d" ser origin
               oseq prev)
        | _ -> Hashtbl.replace commit_seq (epoch, ser, origin) oseq)
      | Sim.Probe.Label_forward { dc; gear; ts = _; oseq; inst = _; epoch } ->
        (match Hashtbl.find_opt route_epoch dc with
        | Some max_e when epoch < max_e ->
          flag at
            (Printf.sprintf "route regression at dc%d: label entered epoch-%d tree after epoch-%d"
               dc epoch max_e)
        | Some max_e when epoch > max_e -> Hashtbl.replace route_epoch dc epoch
        | Some _ -> ()
        | None -> Hashtbl.replace route_epoch dc epoch);
        if gear = Saturn.Label.marker_gear then begin
          if Hashtbl.mem marker_oseq dc then
            flag at (Printf.sprintf "duplicate epoch-change marker from origin dc%d" dc)
          else Hashtbl.replace marker_oseq dc (epoch, oseq)
        end
        else if oseq >= 0 then check_marker_last at ~what:"forward" ~origin:dc ~oseq ~epoch
      | Sim.Probe.Sink_emit { dc; ts } ->
        (match Hashtbl.find_opt sink_ts dc with
        | Some prev when ts < prev ->
          flag at (Printf.sprintf "sink order violation at dc%d: ts %d after ts %d" dc ts prev)
        | _ -> ());
        Hashtbl.replace sink_ts dc ts
      | Sim.Probe.Proxy_apply { dc; src_dc; ts; gear; fallback = _ } ->
        if Hashtbl.mem applied (dc, src_dc, ts, gear) then
          flag at
            (Printf.sprintf "duplicate apply at dc%d: label (src dc%d, ts %d, gear %d) installed twice"
               dc src_dc ts gear)
        else Hashtbl.replace applied (dc, src_dc, ts, gear) ();
        (match Hashtbl.find_opt apply_ts (dc, src_dc) with
        | Some prev when ts <= prev ->
          flag at
            (Printf.sprintf "proxy order violation at dc%d: src dc%d ts %d after ts %d" dc src_dc
               ts prev)
        | _ -> Hashtbl.replace apply_ts (dc, src_dc) ts)
      | Sim.Probe.Fifo_resend _ -> incr resends
      | Sim.Probe.Link_drop { in_flight } ->
        if in_flight then incr drops_cut else incr drops_down;
        incr link_drops;
        link_conserved at
      | Sim.Probe.Head_change _ -> incr head_changes
      | Sim.Probe.Proxy_mode { mode = Sim.Probe.Fallback; _ } -> incr fallbacks
      | Sim.Probe.Switch_begin { epoch; graceful = _ } ->
        incr switches;
        Hashtbl.replace switch_epochs epoch ()
      | _ -> ())
    events;
  {
    violations = List.rev !violations;
    commits = !commits;
    resends = !resends;
    drops_cut = !drops_cut;
    drops_down = !drops_down;
    head_changes = !head_changes;
    fallback_activations = !fallbacks;
    switches = !switches;
  }

let ok r = r.violations = []

let pp fmt r =
  Format.fprintf fmt
    "@[<v>commits=%d resends=%d drops(cut)=%d drops(down)=%d head-changes=%d fallbacks=%d switches=%d@,"
    r.commits r.resends r.drops_cut r.drops_down r.head_changes r.fallback_activations r.switches;
  (match r.violations with
  | [] -> Format.fprintf fmt "invariants: OK"
  | vs ->
    Format.fprintf fmt "invariants: %d VIOLATION(S)" (List.length vs);
    List.iter (fun v -> Format.fprintf fmt "@,  t=%dus %s" (Sim.Time.to_us v.at) v.what) vs);
  Format.fprintf fmt "@]"
