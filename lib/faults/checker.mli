(** Post-run invariant checker for faulted runs.

    Consumes the event stream of a kept {!Sim.Probe.t} after the run and
    asserts what fault injection must never break:

    - {b Exactly-once, FIFO per origin}: at every serializer, the
      per-origin sequence numbers of committed labels ([Ser_commit]) are
      strictly increasing — no duplicate commits (chain dedup works under
      head crashes and retransmission), no reordering (FIFO channels and
      arrival-order relay hold). Gaps are legal: partial replication
      routes each label only toward interested subtrees.
    - {b Sink order}: each datacenter's label sink emits in non-decreasing
      timestamp order ([Sink_emit]) — fault handling never un-serializes
      the local serialization.
    - {b Proxy FIFO}: remote updates from one origin are applied at each
      datacenter in strictly increasing timestamp order ([Proxy_apply]),
      whichever path (stream or fallback) ordered them.

    The invariants hold {e across} an online reconfiguration (§6.2):
    exactly-once/FIFO is keyed per tree epoch (epoch-2 serializer ids and
    per-origin uid counters restart at 0), and the migration window adds
    its own checks —

    - {b Route monotonicity}: once an origin's sink routes into the new
      tree, none of its labels re-enter an older one ([Label_forward]
      epochs are non-decreasing per origin).
    - {b Marker last}: the epoch-change marker (identified by
      [Saturn.Label.marker_gear]) is the last label its origin pushed
      through the old tree — no old-epoch forward or commit carries a
      per-origin seq above the marker's, and no origin emits two markers.
    - {b No duplicate apply}: a label is installed at most once per
      datacenter, whichever tree (or the fallback) raced to order it.

    Violations carry the event's time and a description; a clean faulted
    run reports none. The report also folds the stream into the fault
    counters the bench prints (retransmissions, drops by reason, head
    changes, fallback activations, reconfiguration switches). *)

type violation = { at : Sim.Time.t; what : string }

type report = {
  violations : violation list;  (** emission order *)
  commits : int;  (** [Ser_commit] events *)
  resends : int;  (** [Fifo_resend] events *)
  drops_cut : int;  (** messages lost in flight at a cut *)
  drops_down : int;  (** messages sent into a down link *)
  head_changes : int;
  fallback_activations : int;  (** proxy switches into fallback mode *)
  switches : int;  (** [Switch_begin] events — online reconfigurations *)
}

val analyze : Sim.Probe.t -> report
(** @raise Invalid_argument if the probe was created with [~keep:false]
    (there is no stream to check). *)

val ok : report -> bool
(** No violations. *)

val pp : Format.formatter -> report -> unit
