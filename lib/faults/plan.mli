(** Declarative fault plans.

    A plan is a time-sorted list of fault events over the *names* a
    {!Registry.t} exposes — it mentions no live objects, so the same plan
    can be printed, hashed, replayed and applied to any deployment of the
    same shape. {!Injector.arm} turns a plan into scheduled simulator
    events.

    Plans map onto the paper's §6 failure model: link cuts and partitions
    are the transient tree failures masked by retransmission, serializer
    (replica) crashes are the chain-replication story of §6.1, latency
    spikes exercise the variability Saturn's trees must absorb, and clock
    bumps stress the timestamp-fallback path. *)

type action =
  | Cut of string  (** take a named link down *)
  | Heal of string  (** bring a named link back up *)
  | Partition of Sim.Topology.site list
      (** cut every registered link crossing the bipartition
          (given sites, rest of the world) *)
  | Heal_partition of Sim.Topology.site list
  | Crash_serializer of string  (** crash every remaining replica *)
  | Crash_replica of { serializer : string; replica : int }
  | Latency_factor of { link : string; factor : float }
      (** set the link's latency to [factor ×] its registered base *)
  | Latency_reset of string  (** restore the registered base latency *)
  | Clock_bump of { clock : string; skew_us : int }
      (** shift a datacenter's physical clock; the gear's monotonic
          discipline absorbs negative skew *)
  | Switch_config of { graceful : bool; config : Saturn.Config.t }
      (** online reconfiguration (§6.2): install [config] as the epoch-2
          tree mid-run, via the graceful epoch-change protocol or the
          forced timestamp-order fallback. Not restorative — a switch is a
          migration, not a heal. Saturn-only: registries bound with
          {!Registry.bind_fabric} reject it *)

type event = { at : Sim.Time.t; action : action }

type t

val make : event list -> t
(** Events are sorted by time (stable, so same-time events keep their
    listed order). *)

val events : t -> event list

val is_empty : t -> bool

val last_heal_time : t -> Sim.Time.t option
(** Time of the last restorative event (heal, partition heal, latency
    reset) — the moment from which recovery is measured. [None] when the
    plan never restores anything (e.g. a pure-crash plan). *)

val random :
  seed:int ->
  link_names:string list ->
  serializer_names:string list ->
  clock_names:string list ->
  max_replica_crashes:int ->
  ?switch:Saturn.Config.t ->
  horizon:Sim.Time.t ->
  unit ->
  t
(** A seeded random plan that is always survivable: every [Cut] is paired
    with a later [Heal] and every [Latency_factor] with a later
    [Latency_reset] (both before [horizon]), serializers only lose
    replicas — at most [max_replica_crashes] each, never the whole chain —
    and clock bumps are bounded. With [switch], the plan may (seed's coin
    flip) include one {!Switch_config} to that configuration in the first
    half of the horizon, graceful or forced. Deterministic in [seed] and
    the (name-sorted) input lists. *)

val pp : Format.formatter -> t -> unit
