(** ASCII table rendering for benchmark output.

    The benchmark harness prints every reproduced figure/table as an aligned
    text table with a caption, so the bench output reads like the paper's
    evaluation section. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit

val render : t -> string
val print : t -> unit

val to_csv : t -> string
(** Comma-separated rendering (header row + data rows); cells containing
    commas or quotes are quoted. *)

val title : t -> string

val cell_f : float -> string
(** Standard float formatting used across benches ("%.1f"). *)

val cell_pct : float -> string
(** Percentage with sign, e.g. ["-12.3%"]. *)
