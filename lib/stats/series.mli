(** Simulated-time windowed telemetry.

    Where [Registry] answers "how much, over the whole run", a [Series.t]
    answers "how much, *when*": simulated time is split into fixed-width
    windows (default 50 sim-ms) and every registered series produces one
    summary point per window. Three kinds exist:

    - {b counter} series record the per-window delta of a monotone count
      (apply throughput, serializer ingress rate);
    - {b gauge} series sample a pull closure on every [tick] and summarize
      the samples per window as min/mean/max (queue depths, link in-flight
      counts);
    - {b histogram} series collect per-window latency observations and
      report per-window p50/p99 (remote-update visibility latency, the
      time-resolved view of the paper's Fig. 4). Observations are taken
      in milliseconds but stored as integer microseconds in log-bucketed
      {!Hdr} histograms, so the per-window percentiles keep a constant
      relative error (< 0.8%) instead of the 1 ms linear-bucket floor —
      sub-ms tails at the million-user tier stay resolvable, and
      multi-second fault-era spikes no longer saturate a fixed range.

    Windows are left-closed, right-open: an event at exactly [k * window]
    belongs to window [k], never to window [k-1]. A window with no events
    still yields a (zero/empty) point, so every series spans the same axis.

    Determinism: all state changes are driven by simulation events (writes
    and engine-scheduled ticks), so with a fixed seed the rendered output is
    byte-identical across runs — [digest] is CI-gated on exactly that.
    Names must start with ["series."] and follow the counter-name grammar
    ([a-z0-9_.-], dotted); [saturn-lint] checks literals at registration
    sites statically. *)

type t

val create : ?window:Sim.Time.t -> ?samples_per_window:int -> unit -> t
(** [window] defaults to 50 sim-ms; [samples_per_window] (default 5) sets
    the intended [tick] cadence, exposed as [tick_period].
    @raise Invalid_argument if the window or sample count is not positive. *)

val window : t -> Sim.Time.t
val tick_period : t -> Sim.Time.t
(** [window t / samples_per_window] — the cadence the owning system should
    schedule [tick] at. *)

(** {2 Registration and recording}

    Registration is get-or-create for counters and histograms (independent
    components that agree on a name share the series); [sample] raises on a
    duplicate name, as two closures for one gauge would be ambiguous.
    All registration raises [Invalid_argument] if the name does not start
    with ["series."] or is already bound to a different kind. *)

type counter

val counter : t -> string -> counter
val incr : ?by:int -> counter -> now:Sim.Time.t -> unit

val sample : t -> string -> (unit -> float) -> unit
(** Register a pull gauge, sampled on every [tick]. *)

type hist

val hist : t -> string -> hist
val observe : hist -> now:Sim.Time.t -> float -> unit

val tick : t -> now:Sim.Time.t -> unit
(** Sample every pull gauge into the window containing [now]. Ticks only
    read foreign state and emit no probe events: sampling cannot change
    protocol behaviour. (The periodic timer the owning system schedules to
    drive [tick] does add its own engine-step events to the trace, so an
    instrumented run's digest differs from an uninstrumented one's — but
    deterministically.) *)

val seal : t -> now:Sim.Time.t -> unit
(** Close the window containing [now]: flush every accumulator so the data
    recorded so far is visible to the readers below. Call once after the
    run's driver finishes. Recording after [seal] is allowed (later windows
    reopen), but points already closed are final. *)

(** {2 Annotations}

    Named instants on the window axis — fault, heal and epoch-switch marks
    a timeline renders alongside the series. They carry no values; they
    appear in {!to_csv} as pseudo-rows (kind ["annotation"]) and in
    {!to_json} under ["annotations"], so the digest covers them. *)

val annotate : t -> us:int -> string -> unit
(** Record that [name] happened at absolute simulated time [us]. *)

val annotations : t -> (int * string) list
(** Every recorded annotation as [(us, name)], sorted by time then name —
    deterministic regardless of recording order. *)

(** {2 Reading} *)

type kind = Counter | Gauge | Hist

type point = {
  count : int;  (** counter delta / gauge samples taken / hist observations *)
  vmin : float;
  vmean : float;
  vmax : float;
  p50 : float;  (** histogram series only; 0 elsewhere or when empty *)
  p99 : float;
}

val n_windows : t -> int
(** Number of closed windows (the common axis length of [points]). *)

val names : t -> string list
(** Name-sorted. *)

val kind_of : t -> string -> kind option

val points : t -> string -> point array
(** Per-window summaries, padded with empty points to [n_windows].
    @raise Invalid_argument on an unknown name. *)

val primary : t -> string -> float array
(** The one number per window a timeline plots: counter delta for counter
    series, max sample for gauge series, p99 for histogram series. *)

(** {2 Rendering} *)

val to_csv : t -> string
(** Long-form CSV: [series,kind,window,start_ms,count,min,mean,max,p50,p99],
    sorted by series name then window index, then one pseudo-row per
    annotation (kind ["annotation"], window index and start_ms from the
    annotation's instant, zero values). Deterministic. *)

val to_json : t -> string
(** One JSON object: window width, axis length, per-series point arrays
    (name-sorted) and the annotation list. Deterministic. *)

val digest : t -> string
(** FNV-1a 64-bit digest of [to_csv t], rendered as 16 hex digits. *)

val sparkline : float array -> string
(** One ASCII character per window, [" .:-=+*#%@"] scaled to the max value
    (all-zero input renders as spaces). Pure; usable on [primary] output. *)

val to_table : ?title:string -> t -> Table.t
(** One row per series: name, kind, windows, peak primary value, sparkline. *)

(** {2 Recovery detection} *)

val recovery_window :
  window_us:int ->
  fault_at_us:int ->
  heal_at_us:int ->
  ?tolerance:float ->
  ?slack:float ->
  float array ->
  int option
(** [recovery_window ~window_us ~fault_at_us ~heal_at_us values] finds the
    first window index at or after the heal whose value is back within
    tolerance of the pre-fault steady state: steady is the mean of the
    windows strictly before the fault window, and a window [i] recovers
    when [values.(i) <= steady * (1 + tolerance) + slack] ([tolerance]
    defaults to 0.25, [slack] to 0). Returns [None] when there is no
    pre-fault window to calibrate against or no window recovers. Pure —
    unit-testable on hand-built arrays. *)
