type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable under : int;
  mutable over : int;
}

let create ~lo ~hi ~buckets =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if buckets < 1 then invalid_arg "Histogram.create: buckets < 1";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int buckets;
    counts = Array.make buckets 0;
    n = 0;
    sum = 0.;
    under = 0;
    over = 0;
  }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let idx = int_of_float ((x -. t.lo) /. t.width) in
    let idx = min idx (Array.length t.counts - 1) in
    t.counts.(idx) <- t.counts.(idx) + 1
  end

let count t = t.n
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let percentile t p =
  if t.n = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of [0,100]";
  let target = int_of_float (Float.ceil (p /. 100. *. float_of_int t.n)) in
  let target = max target 1 in
  if t.under >= target then t.lo
  else begin
    let seen = ref t.under in
    let result = ref t.hi in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen >= target then begin
             result := t.lo +. ((float_of_int i +. 0.5) *. t.width);
             raise Exit
           end)
         t.counts
     with Exit -> ());
    !result
  end

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi || Array.length a.counts <> Array.length b.counts then
    invalid_arg "Histogram.merge: geometry mismatch";
  let m = create ~lo:a.lo ~hi:a.hi ~buckets:(Array.length a.counts) in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.n <- a.n + b.n;
  m.sum <- a.sum +. b.sum;
  m.under <- a.under + b.under;
  m.over <- a.over + b.over;
  m

let underflow t = t.under
let overflow t = t.over
