(** Fixed-bucket histogram for cheap, bounded-memory aggregation.

    Used where a run produces millions of observations (per-op visibility
    latencies) and keeping every value would dominate memory. Buckets are
    linear between [lo] and [hi]; values outside the range land in the
    overflow/underflow buckets but still count toward the mean. *)

type t

val create : lo:float -> hi:float -> buckets:int -> t
(** @raise Invalid_argument if [hi <= lo] or [buckets < 1]. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** Approximate percentile: midpoint of the bucket containing the rank.
    @raise Invalid_argument on an empty histogram. *)

val merge : t -> t -> t
(** Pointwise sum; both histograms must share the same geometry.
    [merge] allocates a fresh histogram: neither input aliases the result.
    @raise Invalid_argument otherwise. *)

val underflow : t -> int
val overflow : t -> int
