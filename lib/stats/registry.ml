type counter = { cname : string; mutable n : int }
type gauge = { gname : string; mutable v : float }

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_pull of (unit -> float)
  | M_hist of Histogram.t

type t = {
  metrics : (string, metric) Hashtbl.t;
  (* interning: dense integer ids over counters, so per-op call sites that
     cannot conveniently hold a [counter] handle (id tables, arrays of
     op kinds) bump a flat array slot instead of hashing the name *)
  ids : (string, int) Hashtbl.t;
  mutable dense : counter array;
  mutable n_dense : int;
}

let create () =
  { metrics = Hashtbl.create 32; ids = Hashtbl.create 16; dense = [||]; n_dense = 0 }

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_pull _ -> "pull gauge"
  | M_hist _ -> "histogram"

let clash name ~want existing =
  invalid_arg
    (Printf.sprintf "Registry: %S already registered as a %s, not a %s" name (kind_name existing)
       want)

let counter t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_counter c) -> c
  | Some m -> clash name ~want:"counter" m
  | None ->
    let c = { cname = name; n = 0 } in
    Hashtbl.replace t.metrics name (M_counter c);
    c

let incr ?(by = 1) c = c.n <- c.n + by
let counter_value c = c.n
let counter_name c = c.cname

let intern t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
    let c = counter t name in
    let id = t.n_dense in
    let cap = Array.length t.dense in
    if id = cap then begin
      let bigger = Array.make (max 16 (cap * 2)) c in
      Array.blit t.dense 0 bigger 0 id;
      t.dense <- bigger
    end;
    t.dense.(id) <- c;
    t.n_dense <- id + 1;
    Hashtbl.replace t.ids name id;
    id

let incr_id ?(by = 1) t id =
  let c = t.dense.(id) in
  c.n <- c.n + by

let gauge t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_gauge g) -> g
  | Some m -> clash name ~want:"gauge" m
  | None ->
    let g = { gname = name; v = 0. } in
    Hashtbl.replace t.metrics name (M_gauge g);
    g

let set g v = g.v <- v

let register_pull t name f =
  match Hashtbl.find_opt t.metrics name with
  | Some m -> clash name ~want:"pull gauge" m
  | None -> Hashtbl.replace t.metrics name (M_pull f)

let histogram t name ~lo ~hi ~buckets =
  match Hashtbl.find_opt t.metrics name with
  | Some (M_hist h) -> h
  | Some m -> clash name ~want:"histogram" m
  | None ->
    let h = Histogram.create ~lo ~hi ~buckets in
    Hashtbl.replace t.metrics name (M_hist h);
    h

type value = Counter of int | Gauge of float | Hist of Histogram.t

let sample = function
  | M_counter c -> Counter c.n
  | M_gauge g -> Gauge g.v
  | M_pull f -> Gauge (f ())
  | M_hist h -> Hist h

let find t name = Option.map sample (Hashtbl.find_opt t.metrics name)

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, sample m) :: acc) t.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sum_counters t ~prefix =
  Hashtbl.fold
    (fun name m acc ->
      match m with
      | M_counter c when String.starts_with ~prefix name -> acc + c.n
      | M_counter _ | M_gauge _ | M_pull _ | M_hist _ -> acc)
    t.metrics 0

let to_table ?(title = "registry") t =
  let table = Table.create ~title ~columns:[ "metric"; "value" ] in
  List.iter
    (fun (name, v) ->
      let rendered =
        match v with
        | Counter n -> string_of_int n
        | Gauge v -> Printf.sprintf "%.3f" v
        | Hist h ->
          if Histogram.count h = 0 then "n=0"
          else
            Printf.sprintf "n=%d mean=%.3f p90=%.3f" (Histogram.count h) (Histogram.mean h)
              (Histogram.percentile h 90.)
      in
      Table.add_row table [ name; rendered ])
    (snapshot t);
  table

let print ?title t = Table.print (to_table ?title t)
