type t = {
  sub_bits : int;
  sub : int; (* 1 lsl sub_bits: sub-buckets per octave *)
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  mutable neg : int;
}

(* values [0, sub) get exact unit buckets; a value v >= sub with
   floor(log2 v) = e lands in octave (e - sub_bits), sub-bucket
   (v >> (e - sub_bits)) - sub. Total slots: sub * (64 - sub_bits) covers
   every non-negative OCaml int (e <= 62). *)
let create ?(sub_bits = 7) () =
  if sub_bits < 0 || sub_bits > 16 then invalid_arg "Hdr.create: sub_bits outside [0, 16]";
  let sub = 1 lsl sub_bits in
  {
    sub_bits;
    sub;
    counts = Array.make (sub * (64 - sub_bits)) 0;
    n = 0;
    sum = 0;
    vmin = max_int;
    vmax = 0;
    neg = 0;
  }

let msb v =
  (* position of the highest set bit; v > 0 *)
  let rec go v e = if v <= 1 then e else go (v lsr 1) (e + 1) in
  go v 0

let index t v = if v < t.sub then v else
    let e = msb v in
    t.sub + (((e - t.sub_bits) * t.sub) + ((v lsr (e - t.sub_bits)) - t.sub))

let add t v =
  if v < 0 then t.neg <- t.neg + 1
  else begin
    t.n <- t.n + 1;
    t.sum <- t.sum + v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    let i = index t v in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.n
let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n
let max_value t = if t.n = 0 then 0 else t.vmax
let min_value t = if t.n = 0 then 0 else t.vmin
let negatives t = t.neg

(* bucket midpoint, the same convention as Histogram.percentile: exact for
   the unit buckets, low-edge + half-width above them *)
let representative t idx =
  if idx < t.sub then float_of_int idx
  else begin
    let o = idx - t.sub in
    let e = t.sub_bits + (o / t.sub) in
    let off = o mod t.sub in
    let lo = (1 lsl e) + (off lsl (e - t.sub_bits)) in
    let width = 1 lsl (e - t.sub_bits) in
    float_of_int lo +. (float_of_int (width - 1) /. 2.)
  end

let percentile t p =
  if t.n = 0 then invalid_arg "Hdr.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Hdr.percentile: p out of [0,100]";
  let target = max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int t.n))) in
  if target >= t.n then float_of_int t.vmax
  else begin
    let seen = ref 0 in
    let result = ref (float_of_int t.vmax) in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if c > 0 && !seen >= target then begin
             result := representative t i;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    (* the representative can overshoot the true extremes in a sparse
       bucket; the exact min/max bound it *)
    Float.min (Float.max !result (float_of_int t.vmin)) (float_of_int t.vmax)
  end

let merge a b =
  if a.sub_bits <> b.sub_bits then invalid_arg "Hdr.merge: geometry mismatch";
  let m = create ~sub_bits:a.sub_bits () in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.n <- a.n + b.n;
  m.sum <- a.sum + b.sum;
  m.vmin <- min a.vmin b.vmin;
  m.vmax <- max a.vmax b.vmax;
  m.neg <- a.neg + b.neg;
  m

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.n <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0;
  t.neg <- 0
