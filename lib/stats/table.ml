type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }
let add_row t row = t.rows <- row :: t.rows
let cell_f v = Printf.sprintf "%.1f" v
let cell_pct v = Printf.sprintf "%+.1f%%" v

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  let sep = List.mapi (fun i _ -> String.make widths.(i) '-') t.columns in
  render_row sep;
  List.iter render_row rows;
  Buffer.contents buf

let print t = print_string (render t)

let title t = t.title

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let buf = Buffer.create 256 in
  let row r = Buffer.add_string buf (String.concat "," (List.map csv_cell r) ^ "\n") in
  row t.columns;
  List.iter row (List.rev t.rows);
  Buffer.contents buf
