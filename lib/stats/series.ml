type kind = Counter | Gauge | Hist

type point = {
  count : int;
  vmin : float;
  vmean : float;
  vmax : float;
  p50 : float;
  p99 : float;
}

let empty_point = { count = 0; vmin = 0.; vmean = 0.; vmax = 0.; p50 = 0.; p99 = 0. }

(* per-window accumulator; one histogram allocation is reused across windows
   via [Hdr.reset] *)
type acc =
  | A_counter of { mutable delta : int }
  | A_gauge of { mutable n : int; mutable sum : float; mutable gmin : float; mutable gmax : float }
  | A_hist of { h : Hdr.t; mutable hmin : float; mutable hmax : float }

type series = {
  s_name : string;
  s_kind : kind;
  w_us : int; (* owning registry's window width, for window indexing *)
  acc : acc;
  mutable cur : int; (* window index the accumulator covers *)
  mutable closed : point array; (* growable; first n_closed slots are live *)
  mutable n_closed : int;
  pull : (unit -> float) option;
}

type t = {
  window_us : int;
  samples_per_window : int;
  tbl : (string, series) Hashtbl.t;
  mutable rev_ordered : series list; (* registration order, reversed *)
  mutable rev_annotations : (int * string) list; (* (us, name), emission order reversed *)
}

type counter = series
type hist = series

let create ?(window = Sim.Time.of_ms 50) ?(samples_per_window = 5) () =
  let window_us = Sim.Time.to_us window in
  if window_us <= 0 then invalid_arg "Series.create: window must be positive";
  if samples_per_window <= 0 then invalid_arg "Series.create: samples_per_window must be positive";
  { window_us; samples_per_window; tbl = Hashtbl.create 32; rev_ordered = [];
    rev_annotations = [] }

let window t = Sim.Time.of_us t.window_us
let tick_period t = Sim.Time.of_us (max 1 (t.window_us / t.samples_per_window))

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Hist -> "hist"

(* histogram series take millisecond observations but store integer
   microseconds in log-bucketed [Hdr] histograms: constant relative error
   (< 0.8% at the default geometry) from a 30 µs chain commit to a
   multi-second fault-era tail, where the previous 1 ms linear buckets
   both saturated above 2 s and flattened everything below 1 ms *)
let us_of_ms v = int_of_float (Float.round (v *. 1000.))
let ms_of_us v = v /. 1000.

let fresh_acc = function
  | Counter -> A_counter { delta = 0 }
  | Gauge -> A_gauge { n = 0; sum = 0.; gmin = 0.; gmax = 0. }
  | Hist -> A_hist { h = Hdr.create (); hmin = 0.; hmax = 0. }

let register t name k pull =
  if not (String.length name > 7 && String.sub name 0 7 = "series.") then
    invalid_arg (Printf.sprintf "Series: name %S must start with \"series.\"" name);
  match Hashtbl.find_opt t.tbl name with
  | Some s when s.s_kind = k -> s
  | Some s ->
    invalid_arg
      (Printf.sprintf "Series: %S is a %s series, not a %s" name (kind_name s.s_kind)
         (kind_name k))
  | None ->
    let s =
      { s_name = name; s_kind = k; w_us = t.window_us; acc = fresh_acc k; cur = 0;
        closed = Array.make 16 empty_point; n_closed = 0; pull }
    in
    Hashtbl.replace t.tbl name s;
    t.rev_ordered <- s :: t.rev_ordered;
    s

let close_acc s =
  match s.acc with
  | A_counter a ->
    let d = a.delta in
    a.delta <- 0;
    if d = 0 then empty_point
    else
      let f = float_of_int d in
      { count = d; vmin = f; vmean = f; vmax = f; p50 = 0.; p99 = 0. }
  | A_gauge a ->
    if a.n = 0 then empty_point
    else begin
      let p =
        { count = a.n; vmin = a.gmin; vmean = a.sum /. float_of_int a.n; vmax = a.gmax;
          p50 = 0.; p99 = 0. }
      in
      a.n <- 0;
      a.sum <- 0.;
      a.gmin <- 0.;
      a.gmax <- 0.;
      p
    end
  | A_hist a ->
    let n = Hdr.count a.h in
    if n = 0 then empty_point
    else begin
      let p =
        { count = n; vmin = a.hmin; vmean = ms_of_us (Hdr.mean a.h); vmax = a.hmax;
          p50 = ms_of_us (Hdr.percentile a.h 50.); p99 = ms_of_us (Hdr.percentile a.h 99.) }
      in
      Hdr.reset a.h;
      a.hmin <- 0.;
      a.hmax <- 0.;
      p
    end

let append s p =
  if s.n_closed = Array.length s.closed then begin
    let bigger = Array.make (2 * Array.length s.closed) empty_point in
    Array.blit s.closed 0 bigger 0 s.n_closed;
    s.closed <- bigger
  end;
  s.closed.(s.n_closed) <- p;
  s.n_closed <- s.n_closed + 1

(* close windows [s.cur, to_idx): empty intervening windows become empty
   points, so every series keeps a gap-free axis *)
let roll s ~to_idx =
  while s.cur < to_idx do
    append s (close_acc s);
    s.cur <- s.cur + 1
  done

let enter s ~now =
  let w = Sim.Time.to_us now / s.w_us in
  if w > s.cur then roll s ~to_idx:w

let counter t name = register t name Counter None

let incr ?(by = 1) (s : counter) ~now =
  enter s ~now;
  match s.acc with A_counter a -> a.delta <- a.delta + by | A_gauge _ | A_hist _ -> assert false

let sample t name f =
  if Hashtbl.mem t.tbl name then
    invalid_arg (Printf.sprintf "Series.sample: %S already registered" name);
  ignore (register t name Gauge (Some f))

let hist t name = register t name Hist None

let observe (s : hist) ~now v =
  enter s ~now;
  match s.acc with
  | A_hist a ->
    if Hdr.count a.h = 0 then begin
      a.hmin <- v;
      a.hmax <- v
    end
    else begin
      if v < a.hmin then a.hmin <- v;
      if v > a.hmax then a.hmax <- v
    end;
    Hdr.add a.h (us_of_ms v)
  | A_counter _ | A_gauge _ -> assert false

let gauge_record s v =
  match s.acc with
  | A_gauge a ->
    if a.n = 0 then begin
      a.gmin <- v;
      a.gmax <- v
    end
    else begin
      if v < a.gmin then a.gmin <- v;
      if v > a.gmax then a.gmax <- v
    end;
    a.n <- a.n + 1;
    a.sum <- a.sum +. v
  | A_counter _ | A_hist _ -> assert false

let tick t ~now =
  (* registration order, which is itself deterministic (creation-time code
     path order); pulls only read foreign state *)
  List.iter
    (fun s ->
      match s.pull with
      | Some f ->
        enter s ~now;
        gauge_record s (f ())
      | None -> ())
    (List.rev t.rev_ordered)

let seal t ~now =
  let to_idx = (Sim.Time.to_us now / t.window_us) + 1 in
  List.iter (fun s -> roll s ~to_idx) t.rev_ordered

(* ---- annotations -------------------------------------------------------- *)

let annotate t ~us name = t.rev_annotations <- (us, name) :: t.rev_annotations

let annotations t =
  List.sort
    (fun (ua, na) (ub, nb) -> match Int.compare ua ub with 0 -> String.compare na nb | c -> c)
    t.rev_annotations

(* ---- reading ----------------------------------------------------------- *)

let n_windows t = List.fold_left (fun m s -> max m s.n_closed) 0 t.rev_ordered

let sorted_series t =
  List.sort (fun a b -> compare a.s_name b.s_name) t.rev_ordered

let names t = List.map (fun s -> s.s_name) (sorted_series t)
let kind_of t name = Option.map (fun s -> s.s_kind) (Hashtbl.find_opt t.tbl name)

let points t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> invalid_arg (Printf.sprintf "Series.points: unknown series %S" name)
  | Some s ->
    let n = n_windows t in
    Array.init n (fun i -> if i < s.n_closed then s.closed.(i) else empty_point)

let primary_of s p =
  match s.s_kind with
  | Counter -> float_of_int p.count
  | Gauge -> p.vmax
  | Hist -> p.p99

let primary t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> invalid_arg (Printf.sprintf "Series.primary: unknown series %S" name)
  | Some s -> Array.map (fun p -> primary_of s p) (points t name)

(* ---- rendering --------------------------------------------------------- *)

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "series,kind,window,start_ms,count,min,mean,max,p50,p99\n";
  let n = n_windows t in
  List.iter
    (fun s ->
      for i = 0 to n - 1 do
        let p = if i < s.n_closed then s.closed.(i) else empty_point in
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,%d,%.1f,%d,%.3f,%.3f,%.3f,%.3f,%.3f\n" s.s_name
             (kind_name s.s_kind) i
             (float_of_int (i * t.window_us) /. 1000.)
             p.count p.vmin p.vmean p.vmax p.p50 p.p99)
      done)
    (sorted_series t);
  (* annotations ride as pseudo-rows with the same column count, so the CSV
     digest covers them and a switch/fault mark drifting in time fails the
     determinism gate like any other divergence *)
  List.iter
    (fun (us, name) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,annotation,%d,%.1f,0,0.000,0.000,0.000,0.000,0.000\n" name
           (us / t.window_us)
           (float_of_int us /. 1000.)))
    (annotations t);
  buf

let to_csv t = Buffer.contents (to_csv t)

let json_point buf i p =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"w\":%d,\"count\":%d,\"min\":%.3f,\"mean\":%.3f,\"max\":%.3f,\"p50\":%.3f,\"p99\":%.3f}"
       i p.count p.vmin p.vmean p.vmax p.p50 p.p99)

let to_json t =
  let buf = Buffer.create 4096 in
  let n = n_windows t in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"saturn-series/1\",\"window_us\":%d,\"windows\":%d,\"series\":["
       t.window_us n);
  List.iteri
    (fun si s ->
      if si > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%S,\"kind\":%S,\"points\":[" s.s_name (kind_name s.s_kind));
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char buf ',';
        json_point buf i (if i < s.n_closed then s.closed.(i) else empty_point)
      done;
      Buffer.add_string buf "]}")
    (sorted_series t);
  Buffer.add_string buf "],\"annotations\":[";
  List.iteri
    (fun i (us, name) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%S,\"us\":%d,\"w\":%d}" name us (us / t.window_us)))
    (annotations t);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* FNV-1a 64-bit, matching the probe digest convention *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let digest t =
  let s = to_csv t in
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

let spark_chars = " .:-=+*#%@"

let sparkline values =
  let vmax = Array.fold_left Float.max 0. values in
  String.init (Array.length values) (fun i ->
      let v = values.(i) in
      if vmax <= 0. || v <= 0. then spark_chars.[0]
      else
        let level = 1 + int_of_float (v /. vmax *. 8.999) in
        spark_chars.[min level 9])

let to_table ?(title = "time series") t =
  let tbl = Table.create ~title ~columns:[ "series"; "kind"; "windows"; "peak"; "timeline" ] in
  List.iter
    (fun s ->
      let values = primary t s.s_name in
      let peak = Array.fold_left Float.max 0. values in
      Table.add_row tbl
        [ s.s_name; kind_name s.s_kind; string_of_int (Array.length values);
          Printf.sprintf "%.1f" peak; sparkline values ])
    (sorted_series t);
  tbl

(* ---- recovery detection ------------------------------------------------ *)

let recovery_window ~window_us ~fault_at_us ~heal_at_us ?(tolerance = 0.25) ?(slack = 0.) values =
  if window_us <= 0 then invalid_arg "Series.recovery_window: window_us must be positive";
  let fault_idx = fault_at_us / window_us in
  let heal_idx = heal_at_us / window_us in
  let n = Array.length values in
  let steady_n = min fault_idx n in
  if steady_n <= 0 then None
  else begin
    let sum = ref 0. in
    for i = 0 to steady_n - 1 do
      sum := !sum +. values.(i)
    done;
    let steady = !sum /. float_of_int steady_n in
    let threshold = (steady *. (1. +. tolerance)) +. slack in
    let rec find i = if i >= n then None else if values.(i) <= threshold then Some i else find (i + 1) in
    find (max heal_idx fault_idx)
  end
