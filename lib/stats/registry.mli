(** Named metric registry: counters, gauges and histograms that subsystems
    register into, replacing ad-hoc [mutable count] fields scattered through
    the engine, the Saturn core and the harness.

    Metrics are keyed by dotted names ([proxy.dc0.applied_updates],
    [service.labels_input], …). Lookups are get-or-create, so independent
    components that agree on a name share (and jointly increment) one
    metric; components that must stay distinguishable scope their names.
    Registering the same name with two different kinds raises.

    Pull gauges ([register_pull]) sample a closure at snapshot time — the
    bridge for values owned by layers the registry cannot depend on, such
    as [Sim.Engine.events_processed]. *)

type t

val create : unit -> t

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Get-or-create. @raise Invalid_argument if the name holds another kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

(** {3 Interned counter ids}

    For per-op paths that index counters dynamically (by op kind, by dc) and
    cannot hold one [counter] handle per site, [intern] maps a name to a
    dense integer id once, and [incr_id] bumps a flat array slot — no string
    hashing on the hot path. Ids share the counter namespace: an interned
    name and [counter] on the same name hit the same metric. *)

val intern : t -> string -> int
(** Get-or-create the dense id for counter [name].
    @raise Invalid_argument if the name holds a non-counter metric. *)

val incr_id : ?by:int -> t -> int -> unit

(** {2 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit

val register_pull : t -> string -> (unit -> float) -> unit
(** Registers a gauge whose value is sampled on demand.
    @raise Invalid_argument if the name is already registered. *)

(** {2 Histograms} *)

val histogram : t -> string -> lo:float -> hi:float -> buckets:int -> Histogram.t
(** Get-or-create; the geometry arguments only apply on creation. *)

(** {2 Reading} *)

type value = Counter of int | Gauge of float | Hist of Histogram.t

val find : t -> string -> value option
val snapshot : t -> (string * value) list
(** Every metric, name-sorted; pull gauges are sampled now. *)

val sum_counters : t -> prefix:string -> int
(** Sum of every counter whose name starts with [prefix] — aggregates
    per-datacenter scoped counters ([proxy.dc*...]) into one figure. *)

val print : ?title:string -> t -> unit
