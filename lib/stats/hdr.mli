(** HDR-style log-bucketed histogram over non-negative integers.

    Where {!Histogram} trades resolution for a fixed linear geometry (1 ms
    buckets saturate the moment a run's tail crosses the range), an [Hdr.t]
    keeps a {e constant relative} error everywhere: each power-of-two
    octave is split into [2^sub_bits] sub-buckets, so a recorded value is
    off from its bucket's representative by at most [2^-sub_bits] of
    itself. Values up to 32 µs land in exact unit buckets; a 40 ms hop and
    a 400 µs chain commit are resolved equally well — the property the
    tail-latency blame tables need at the million-user scale tier, where
    visibility latencies span four orders of magnitude.

    Everything is integer arithmetic on a flat array: recording, merging
    and percentile reads are deterministic bit-for-bit, so Hdr-derived
    numbers can sit behind CI digest gates like every other statistic.
    Values are unit-agnostic ints (callers use simulated microseconds);
    negative inputs are counted in {!negatives} and excluded from the
    distribution rather than clamped silently. *)

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] (default 7) sets the per-octave resolution: [2^sub_bits]
    sub-buckets, hence a worst-case relative error of [2^-sub_bits]
    (< 0.8 % at the default). Memory is one int array of roughly
    [2^sub_bits * 57] slots, independent of the value range.
    @raise Invalid_argument if [sub_bits] is outside [0, 16]. *)

val add : t -> int -> unit
val count : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** Representative value (bucket midpoint; exact below [2^sub_bits]) of
    the bucket containing the rank, like {!Histogram.percentile} but with
    log geometry. The top rank reports the exact recorded maximum.
    @raise Invalid_argument on an empty histogram or [p] outside [0,100]. *)

val max_value : t -> int
(** Exact largest value recorded; 0 when empty. *)

val min_value : t -> int
(** Exact smallest non-negative value recorded; 0 when empty. *)

val negatives : t -> int
(** Inputs below zero: counted here, excluded from the distribution. *)

val merge : t -> t -> t
(** Pointwise sum into a fresh histogram; both inputs must share
    [sub_bits]. @raise Invalid_argument otherwise. *)

val reset : t -> unit
(** Zero every bucket and statistic while keeping the geometry, so a hot
    path (the per-window accumulators in {!Series}) can reuse one
    allocation per window instead of reallocating. *)
