(** Per-operation causal-metadata byte accounting.

    Every stabilization protocol pays for causality in wire bytes somewhere:
    attached to each replicated update (Saturn labels, GentleRain/Eunomia
    scalars, Okapi hybrid timestamps, Cure vectors, Orbe matrices, COPS
    dependency lists), in dedicated stabilization traffic (sequencer
    announcements, stable-vector broadcasts), or in liveness heartbeats.
    [Meta_bytes] splits those three cost centres into counters named

      [meta.bytes.<system>.attached]
      [meta.bytes.<system>.stabilization]
      [meta.bytes.<system>.heartbeat]

    plus a per-op histogram [meta.bytes.<system>.per_op] of the attached
    bytes each update ships across all its replica destinations. The split
    matters because the three grow differently: attached bytes scale with
    operation rate and metadata width, stabilization and heartbeat bytes
    scale with topology and period but not with load.

    Accounting conventions (shared across every system so the 7-way
    comparison is apples-to-apples):
    - only causal metadata counts — the (ts, origin) versioning header that
      even the eventual baseline ships for last-writer-wins convergence is
      storage versioning, not causality, and is excluded everywhere;
    - attached bytes are wire bytes, counted once per remote shipment
      (an update replicated to [f] remote DCs with [w] metadata bytes
      records [f * w]);
    - Saturn's metadata tree is itself the stabilization mechanism; its
      cost is modelled as latency (tree hops) rather than per-update bytes
      beyond the constant label, so its stabilization counter stays 0 by
      construction. *)

type t

val create : Registry.t -> system:string -> t
(** Registers the three counters and the per-op histogram under
    [meta.bytes.<system>.*]. Get-or-create: two systems sharing a registry
    and a name share the metrics. *)

val record_op : t -> bytes:int -> fanout:int -> unit
(** One update shipped [bytes] of attached metadata to each of [fanout]
    remote destinations: adds [bytes * fanout] to the attached counter and
    observes [bytes * fanout] in the per-op histogram. [fanout = 0] (a key
    replicated nowhere remote) still counts the op with 0 bytes. *)

val record_stabilization : t -> bytes:int -> unit
(** One stabilization message (sequencer announcement, stable-vector or
    matrix-row broadcast) of [bytes] on the wire. *)

val record_heartbeat : t -> bytes:int -> unit
(** One liveness/floor heartbeat of [bytes] on the wire. *)

val attached_bytes : t -> int

val total_bytes : t -> int
(** [attached + stabilization + heartbeat]. *)

val ops : t -> int
(** Number of [record_op] calls (the per-op histogram's count). *)

val attached_per_op : t -> float
(** Mean attached bytes per recorded op; 0 when no ops were recorded. *)

val per_op_hist : t -> Histogram.t
