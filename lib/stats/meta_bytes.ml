type t = {
  attached : Registry.counter;
  stabilization : Registry.counter;
  heartbeat : Registry.counter;
  per_op : Histogram.t;
}

let create registry ~system =
  {
    attached = Registry.counter registry (Printf.sprintf "meta.bytes.%s.attached" system);
    stabilization = Registry.counter registry (Printf.sprintf "meta.bytes.%s.stabilization" system);
    heartbeat = Registry.counter registry (Printf.sprintf "meta.bytes.%s.heartbeat" system);
    (* COPS dependency lists can exceed the range under unpruned contexts;
       overflow observations still count toward the mean, which is all the
       shootout table reads. *)
    per_op = Registry.histogram registry (Printf.sprintf "meta.bytes.%s.per_op" system)
        ~lo:0. ~hi:2048. ~buckets:128;
  }

let record_op t ~bytes ~fanout =
  if bytes < 0 || fanout < 0 then invalid_arg "Meta_bytes.record_op: negative bytes or fanout";
  let total = bytes * fanout in
  if total > 0 then Registry.incr ~by:total t.attached;
  Histogram.add t.per_op (float_of_int total)

let record_stabilization t ~bytes =
  if bytes < 0 then invalid_arg "Meta_bytes.record_stabilization: negative bytes";
  if bytes > 0 then Registry.incr ~by:bytes t.stabilization

let record_heartbeat t ~bytes =
  if bytes < 0 then invalid_arg "Meta_bytes.record_heartbeat: negative bytes";
  if bytes > 0 then Registry.incr ~by:bytes t.heartbeat

let attached_bytes t = Registry.counter_value t.attached
let stabilization_bytes t = Registry.counter_value t.stabilization
let heartbeat_bytes t = Registry.counter_value t.heartbeat
let total_bytes t = attached_bytes t + stabilization_bytes t + heartbeat_bytes t
let ops t = Histogram.count t.per_op

let attached_per_op t =
  let n = ops t in
  if n = 0 then 0. else Histogram.mean t.per_op

let per_op_hist t = t.per_op
