(** Key-to-partition assignment inside a datacenter.

    Each datacenter shards its keyspace over [n] storage servers; the
    frontend routes a request to the responsible server. We use a mixed
    multiplicative hash so that consecutive key ids spread evenly, which is
    what Riak Core's consistent hashing gives the paper's prototype. *)

type t

val create : partitions:int -> t
(** @raise Invalid_argument when [partitions < 1]. *)

val responsible : t -> key:int -> int
(** Partition index in [0, partitions). Deterministic in the key. *)
