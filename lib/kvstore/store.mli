(** In-memory versioned key-value store, polymorphic in per-version
    metadata.

    One [Store.t] backs each storage server inside a datacenter. The store
    keeps, for every key, the latest version together with the metadata the
    consistency layer attached to it (a Saturn label, a GentleRain scalar, a
    Cure vector, or nothing for the eventual baseline). Last-writer-wins on
    the metadata ordering supplied by the caller. *)

type ('meta, 'k) t

val create : unit -> ('meta, int) t

val put : ('meta, int) t -> key:int -> Value.t -> 'meta -> unit
(** Unconditional write of a new latest version. *)

val put_if_newer :
  ('meta, int) t -> cmp:('meta -> 'meta -> int) -> key:int -> Value.t -> 'meta -> bool
(** Installs the version only if its metadata is strictly greater than the
    current one under [cmp] (or the key is absent). Returns whether the
    write was installed — the replica-side last-writer-wins rule. *)

val get : ('meta, int) t -> key:int -> (Value.t * 'meta) option
val mem : ('meta, int) t -> key:int -> bool
val size : ('meta, int) t -> int

val puts_applied : ('meta, int) t -> int
(** Number of versions ever installed (monotone counter). *)
