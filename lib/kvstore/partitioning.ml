type t = { n : int }

let create ~partitions =
  if partitions < 1 then invalid_arg "Partitioning.create: partitions < 1";
  { n = partitions }

(* Fibonacci hashing: spreads consecutive ids across partitions. *)
let mix key =
  let h = key * 0x2545F4914F6CDD1D in
  (h lsr 17) land max_int

let responsible t ~key = mix key mod t.n
