type ('meta, 'k) t = { tbl : ('k, Value.t * 'meta) Hashtbl.t; mutable applied : int }

let create () = { tbl = Hashtbl.create 1024; applied = 0 }

let put t ~key v m =
  Hashtbl.replace t.tbl key (v, m);
  t.applied <- t.applied + 1

let put_if_newer t ~cmp ~key v m =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    put t ~key v m;
    true
  | Some (_, cur) ->
    if cmp m cur > 0 then begin
      put t ~key v m;
      true
    end
    else false

let get t ~key = Hashtbl.find_opt t.tbl key
let mem t ~key = Hashtbl.mem t.tbl key
let size t = Hashtbl.length t.tbl

let puts_applied t = t.applied
